// Package sta performs slope-propagating static timing analysis on
// elaborated netlists using the paper's closed-form delay model, and
// extracts critical paths as bounded-path objects for the POPS
// optimizers. Path selection follows the paper's POPS philosophy
// (ref. [11-12]): only a user-limited number of worst paths is
// extracted and optimized.
//
// Timing state is stored in dense slices indexed by netlist.Node.ID and
// validated against the circuit's structural mutation epoch
// (netlist.Circuit.Epoch): a Result knows which structure it was
// computed on, incremental updates refuse stale structures with
// ErrStaleAnalysis, and the reusable Session re-analyzes into the same
// buffers so the optimizer's round loop performs no steady-state
// allocation.
package sta

import (
	"fmt"
	"math"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/tech"
)

// Config parameterizes an analysis run.
type Config struct {
	// InputTau is the transition time (ps) presented at every primary
	// input. Zero selects delay.DefaultTauIn for the model's corner.
	InputTau float64

	// Parallelism bounds the intra-circuit wavefront parallelism of
	// the forward and backward passes (see internal/par): 0 = auto
	// (GOMAXPROCS workers once the circuit clears the node-count
	// threshold), 1 or -1 = serial, n>1 = at most n workers (threshold
	// still applies), n<-1 = force |n| workers bypassing the
	// threshold. Every degree produces byte-identical results; the
	// knob only trades latency for cores, so it is excluded from every
	// memo key.
	Parallelism int
}

// staParallelMinNodes is the auto-policy threshold: circuits below it
// (the whole classic suite) take the serial path, preserving its
// zero-allocation guarantee; staMinSpan is the smallest per-worker
// span of one level worth handing off.
const (
	staParallelMinNodes = 5000
	staMinSpan          = 32
)

func (cfg Config) inputTau(p *tech.Process) float64 {
	if cfg.InputTau > 0 {
		return cfg.InputTau
	}
	return delay.DefaultTauIn(p)
}

// NodeTiming carries the per-net timing state: worst arrival times and
// output transition times for both output edges.
type NodeTiming struct {
	TRise, TFall     float64 // worst arrival of the rising/falling output edge (ps)
	TauRise, TauFall float64 // output transition times (ps)
}

// Worst returns the worse of the two arrival times.
func (t NodeTiming) Worst() float64 { return math.Max(t.TRise, t.TFall) }

// Result is the outcome of an STA run. Per-node state lives in dense
// slices indexed by Node.ID; it is valid exactly while the circuit's
// structural epoch matches the one recorded at analysis time.
type Result struct {
	Circuit *netlist.Circuit
	Model   *delay.Model
	Config  Config

	// WorstDelay is the latest arrival over all primary outputs (ps);
	// WorstOutput the pseudo-node where it occurs, WorstRising its edge.
	WorstDelay  float64
	WorstOutput *netlist.Node
	WorstRising bool

	// epoch is Circuit.Epoch() at analysis time; staleEpoch marks a
	// Result poisoned by a failed incremental update.
	epoch uint64

	// timing, predRise and predFall are indexed by Node.ID (dense up to
	// Circuit.IDBound at analysis time). pred records, per (node,
	// output edge), the fanin whose arrival determined the worst
	// arrival — the backtracking skeleton.
	timing   []NodeTiming
	predRise []*netlist.Node
	predFall []*netlist.Node

	// order caches the topological order for incremental updates.
	order []*netlist.Node

	// Scratch reused across incremental updates and re-analyses.
	dirty []bool
	topo  netlist.TopoScratch
	reqR  []float64 // backward-pass scratch (Slacks)
	reqF  []float64

	// levels is the wavefront schedule of the parallel passes, cached
	// by structural epoch (levelsEpoch is Circuit.Epoch()+1 at
	// levelization time; 0 = never computed). The serial paths never
	// touch it.
	levels      netlist.Levels
	levelsEpoch uint64
}

// Analyze runs slope-propagating STA over the circuit. The circuit must
// be elaborated (primitive cells only) and acyclic.
func Analyze(c *netlist.Circuit, m *delay.Model, cfg Config) (*Result, error) {
	res := &Result{Circuit: c, Model: m, Config: cfg}
	if err := res.analyze(); err != nil {
		return nil, err
	}
	return res, nil
}

// grow sizes the per-ID slices for the circuit's current ID bound,
// reusing capacity, and clears the entries.
//
//pops:noalloc per-ID slices grow only under the cap guard
func (r *Result) grow() {
	n := r.Circuit.IDBound()
	if cap(r.timing) < n {
		r.timing = make([]NodeTiming, n)
		r.predRise = make([]*netlist.Node, n)
		r.predFall = make([]*netlist.Node, n)
		r.dirty = make([]bool, n)
	}
	r.timing = r.timing[:n]
	r.predRise = r.predRise[:n]
	r.predFall = r.predFall[:n]
	r.dirty = r.dirty[:n]
	for i := range r.timing {
		r.timing[i] = NodeTiming{}
		r.predRise[i] = nil
		r.predFall[i] = nil
		r.dirty[i] = false
	}
}

// analyze (re)runs the full forward pass in place, reusing the
// Result's buffers. It records the circuit's current epoch on success.
//
//pops:noalloc full re-analysis must land in the reused buffers
func (r *Result) analyze() error {
	c := r.Circuit
	if !netlist.IsElaborated(c) {
		//popslint:ignore noalloc precondition error path
		return fmt.Errorf("sta: circuit %s contains composite cells; run netlist.Elaborate first", c.Name)
	}
	order, err := c.TopoOrderInto(r.order, &r.topo)
	if err != nil {
		return err
	}
	r.order = order
	r.grow()
	tauIn := r.Config.inputTau(r.Model.Proc)
	r.WorstDelay = math.Inf(-1)
	r.WorstOutput = nil

	if workers := par.Degree(r.Config.Parallelism, len(order), staParallelMinNodes); workers > 1 {
		r.analyzeWavefront(tauIn, workers)
	} else {
		for _, n := range order {
			switch {
			case n.Type == gate.Input:
				r.timing[n.ID] = NodeTiming{TauRise: tauIn, TauFall: tauIn}
			case n.Type == gate.Output:
				d := n.Fanin[0]
				dt := r.timing[d.ID]
				r.timing[n.ID] = dt
				r.predRise[n.ID] = d
				r.predFall[n.ID] = d
				if dt.TRise > r.WorstDelay {
					r.WorstDelay, r.WorstOutput, r.WorstRising = dt.TRise, n, true
				}
				if dt.TFall > r.WorstDelay {
					r.WorstDelay, r.WorstOutput, r.WorstRising = dt.TFall, n, false
				}
			default:
				r.analyzeGate(n)
			}
		}
	}
	if r.WorstOutput == nil {
		//popslint:ignore noalloc degenerate-circuit error path
		return fmt.Errorf("sta: circuit %s has no primary outputs", c.Name)
	}
	r.epoch = c.Epoch()
	return nil
}

// wavefrontLevels returns the level schedule for the current circuit
// structure, re-levelizing into the cached buffers only when the
// structural epoch moved since the last levelization. The cache rides
// on the Result owned by a Session, so a session's repeated parallel
// passes (Analyze after Invalidate, Slacks) pay for levelization once
// per structural epoch.
func (r *Result) wavefrontLevels() *netlist.Levels {
	if r.levelsEpoch != r.Circuit.Epoch()+1 {
		netlist.LevelsInto(&r.levels, r.Circuit, r.order)
		r.levelsEpoch = r.Circuit.Epoch() + 1
	}
	return &r.levels
}

// analyzeWavefront is the parallel forward pass: levels run in
// sequence, the nodes of one level in parallel chunks. Every node
// writes only its own dense slots and reads only fanin slots from
// strictly lower levels, so any execution order inside a level
// produces the same bits as the serial loop. The worst-output
// reduction then replays the serial loop's comparison sequence (a
// topo-order scan over the Output pseudo-nodes), keeping WorstDelay,
// WorstOutput and WorstRising byte-identical — including ties, which
// resolve to whichever output the serial scan saw first.
func (r *Result) analyzeWavefront(tauIn float64, workers int) {
	lv := r.wavefrontLevels()
	par.Wavefront(workers, lv.Offsets, staMinSpan, false, func(lo, hi int) {
		for _, n := range lv.Order[lo:hi] {
			switch {
			case n.Type == gate.Input:
				r.timing[n.ID] = NodeTiming{TauRise: tauIn, TauFall: tauIn}
			case n.Type == gate.Output:
				d := n.Fanin[0]
				r.timing[n.ID] = r.timing[d.ID]
				r.predRise[n.ID] = d
				r.predFall[n.ID] = d
			default:
				r.analyzeGate(n)
			}
		}
	})
	for _, n := range r.order {
		if n.Type != gate.Output {
			continue
		}
		dt := r.timing[n.ID]
		if dt.TRise > r.WorstDelay {
			r.WorstDelay, r.WorstOutput, r.WorstRising = dt.TRise, n, true
		}
		if dt.TFall > r.WorstDelay {
			r.WorstDelay, r.WorstOutput, r.WorstRising = dt.TFall, n, false
		}
	}
}

// analyzeGate computes the worst rise/fall arrivals of a logic node.
// Delays and transitions honor the node's Vt class; for the default SVT
// class the Vt-aware model delegates bit-exactly to the base model.
//
//pops:noalloc
func (r *Result) analyzeGate(n *netlist.Node) {
	cell := n.Cell()
	cl := n.FanoutCap() + cell.Parasitic(n.CIn)
	tauF := r.Model.TransitionHLVt(cell, n.CIn, cl, n.Vt)
	tauR := r.Model.TransitionLHVt(cell, n.CIn, cl, n.Vt)

	tFall, tRise := math.Inf(-1), math.Inf(-1)
	var pFall, pRise *netlist.Node
	for _, d := range n.Fanin {
		dt := r.timing[d.ID]
		if cell.Invert {
			// Input rising → output falling.
			if t := dt.TRise + r.Model.GateDelayHLVt(cell, n.CIn, cl, dt.TauRise, n.Vt); t > tFall {
				tFall, pFall = t, d
			}
			// Input falling → output rising.
			if t := dt.TFall + r.Model.GateDelayLHVt(cell, n.CIn, cl, dt.TauFall, n.Vt); t > tRise {
				tRise, pRise = t, d
			}
		} else {
			// Non-inverting (BUF): edges preserved.
			if t := dt.TFall + r.Model.GateDelayHLVt(cell, n.CIn, cl, dt.TauFall, n.Vt); t > tFall {
				tFall, pFall = t, d
			}
			if t := dt.TRise + r.Model.GateDelayLHVt(cell, n.CIn, cl, dt.TauRise, n.Vt); t > tRise {
				tRise, pRise = t, d
			}
		}
	}
	r.timing[n.ID] = NodeTiming{TRise: tRise, TFall: tFall, TauRise: tauR, TauFall: tauF}
	r.predRise[n.ID] = pRise
	r.predFall[n.ID] = pFall
}

// Timing returns the node's timing state. The node must belong to the
// analyzed circuit; nodes created after the analysis (stale access)
// return a zero NodeTiming.
func (r *Result) Timing(n *netlist.Node) NodeTiming {
	if n == nil || n.ID >= len(r.timing) {
		return NodeTiming{}
	}
	return r.timing[n.ID]
}

// Epoch returns the structural epoch of the circuit this analysis was
// computed on.
func (r *Result) Epoch() uint64 { return r.epoch }

// Fresh reports whether the analysis still matches the circuit's
// structure (no structural mutation since the last analyze/update).
func (r *Result) Fresh() bool { return r.epoch == r.Circuit.Epoch() }

// ArrivalAt returns the worst arrival time at a node's output (ps).
func (r *Result) ArrivalAt(n *netlist.Node) float64 { return r.Timing(n).Worst() }

// CriticalNodes backtracks the worst path from the worst output to a
// primary input, returning the logic nodes in signal order.
func (r *Result) CriticalNodes() []*netlist.Node {
	return r.AppendCriticalNodes(nil)
}

// AppendCriticalNodes is CriticalNodes appending into dst[:0], for
// callers recycling the slice across rounds.
func (r *Result) AppendCriticalNodes(dst []*netlist.Node) []*netlist.Node {
	rev := dst[:0]
	n := r.WorstOutput
	rising := r.WorstRising
	for n != nil {
		if n.IsLogic() {
			rev = append(rev, n)
		}
		var p *netlist.Node
		if rising {
			p = r.predRise[n.ID]
		} else {
			p = r.predFall[n.ID]
		}
		if p != nil && n.IsLogic() && n.Cell().Invert {
			rising = !rising
		}
		n = p
	}
	// Reverse into signal order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathFromNodes builds a bounded-path object from a chain of logic
// nodes (in signal order). The off-path load of each stage is its full
// fan-out minus the single pin continuing the path; the last stage
// keeps its entire fan-out (terminal + branches) as fixed load.
func PathFromNodes(name string, nodes []*netlist.Node, m *delay.Model, cfg Config) (*delay.Path, error) {
	pa := &delay.Path{}
	if err := PathFromNodesInto(pa, name, nodes, m, cfg); err != nil {
		return nil, err
	}
	return pa, nil
}

// PathFromNodesInto is PathFromNodes into a caller-owned path: pa's
// stage slice is truncated and refilled, so the optimizer's round loop
// can re-extract the worst path every round without allocating. On
// error pa is left partially filled and must not be used.
func PathFromNodesInto(pa *delay.Path, name string, nodes []*netlist.Node, m *delay.Model, cfg Config) error {
	if len(nodes) == 0 {
		return fmt.Errorf("sta: empty node chain for path %q", name)
	}
	pa.Name = name
	pa.TauIn = cfg.inputTau(m.Proc)
	pa.Stages = pa.Stages[:0]
	for i, n := range nodes {
		if !n.IsLogic() {
			return fmt.Errorf("sta: path %q node %s is not a logic cell", name, n.Name)
		}
		coff := n.FanoutCap()
		if i+1 < len(nodes) {
			next := nodes[i+1]
			linked := false
			for _, f := range next.Fanin {
				if f == n {
					linked = true
					break
				}
			}
			if !linked {
				return fmt.Errorf("sta: path %q: %s does not drive %s", name, n.Name, next.Name)
			}
			coff -= next.CIn // one pin continues the path
			if coff < 0 {
				coff = 0
			}
		}
		pa.Stages = append(pa.Stages, delay.Stage{Cell: n.Cell(), CIn: n.CIn, COff: coff, Node: n})
	}
	return nil
}

// CriticalPath runs STA and extracts the single worst path as a
// bounded-path object.
func CriticalPath(c *netlist.Circuit, m *delay.Model, cfg Config) (*delay.Path, *Result, error) {
	res, err := Analyze(c, m, cfg)
	if err != nil {
		return nil, nil, err
	}
	return criticalPathFrom(res, m, cfg)
}

func criticalPathFrom(res *Result, m *delay.Model, cfg Config) (*delay.Path, *Result, error) {
	nodes := res.CriticalNodes()
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("sta: circuit %s has an empty critical path", res.Circuit.Name)
	}
	pa, err := PathFromNodes(res.Circuit.Name+"/critical", nodes, m, cfg)
	if err != nil {
		return nil, nil, err
	}
	return pa, res, nil
}
