package sta

import (
	"repro/internal/delay"
	"repro/internal/netlist"
)

// Session is a reusable timing view of one circuit: it owns a Result
// whose buffers persist across rounds of an optimization loop, so
// repeated timing queries cost no steady-state allocation.
//
// The contract mirrors an incremental STA engine:
//
//   - Analyze returns the current Result, running a full forward pass
//     only when the circuit's structural epoch moved (buffer replay, De
//     Morgan rewrites) or a failed update poisoned the state — the
//     re-analysis lands in the same slices, not fresh ones.
//   - After size/wire/Vt-only writes, the caller repairs the Result in
//     place with Result.Update(changed...); the session then keeps
//     serving the repaired analysis without re-propagating the whole
//     circuit.
//
// A Session is not safe for concurrent use; the concurrent engine gives
// each (circuit, Tc) task its own session over its own netlist clone.
type Session struct {
	circuit *netlist.Circuit
	model   *delay.Model
	cfg     Config
	res     *Result
	rec     Recorder
}

// Recorder observes session-level analysis events; the engine plugs
// its STA-reuse counters in here. Implementations must be safe for
// concurrent use (many sessions share one recorder) and allocation-
// free — Analyzed is called on the round loop's hot path.
type Recorder interface {
	// Analyzed reports one Analyze call: full is true when a complete
	// forward pass ran, false when the cached incremental state was
	// served (the reuse the session exists for).
	Analyzed(full bool)
}

// nopRecorder is the default Recorder: events vanish.
type nopRecorder struct{}

func (nopRecorder) Analyzed(bool) {}

// NewSession builds a session over a circuit. No analysis runs until
// the first Analyze call.
func NewSession(c *netlist.Circuit, m *delay.Model, cfg Config) *Session {
	return &Session{circuit: c, model: m, cfg: cfg, rec: nopRecorder{}}
}

// SetRecorder installs an analysis-event recorder (nil restores the
// no-op). The engine calls it right after creating each task session.
func (s *Session) SetRecorder(r Recorder) {
	if r == nil {
		r = nopRecorder{}
	}
	s.rec = r
}

// SetParallelism installs an intra-circuit parallelism policy (see
// Config.Parallelism) on the session and its live analysis state. The
// engine calls it per task, sizing the degree from idle pool capacity;
// the knob never changes any analysis bit, so it is safe to flip
// between rounds.
func (s *Session) SetParallelism(n int) {
	s.cfg.Parallelism = n
	if s.res != nil {
		s.res.Config.Parallelism = n
	}
}

// Circuit returns the circuit under analysis.
func (s *Session) Circuit() *netlist.Circuit { return s.circuit }

// Model returns the delay model the session analyzes with.
func (s *Session) Model() *delay.Model { return s.model }

// Config returns the STA configuration of the session.
func (s *Session) Config() Config { return s.cfg }

// Analyze returns a Result valid for the circuit's current structural
// epoch: the cached analysis when the structure is unchanged, a full
// re-analysis into the session's reused buffers when it moved.
//
//pops:noalloc round loops call this once per step; the reuse is the point
func (s *Session) Analyze() (*Result, error) {
	if s.res != nil && s.res.Fresh() {
		s.rec.Analyzed(false)
		return s.res, nil
	}
	if s.res == nil {
		s.res = &Result{Circuit: s.circuit, Model: s.model, Config: s.cfg} //popslint:ignore noalloc first-call lazy init; every later Analyze reuses it
	}
	if err := s.res.analyze(); err != nil {
		return nil, err
	}
	s.rec.Analyzed(true)
	return s.res, nil
}

// Invalidate drops the cached analysis, forcing the next Analyze to run
// a full forward pass (still into the reused buffers). Size-only writes
// do not need it — repair those with Result.Update — but a caller that
// lost track of what changed can use it as a safe reset.
func (s *Session) Invalidate() {
	if s.res != nil {
		s.res.epoch = staleEpoch
	}
}

// CriticalPath analyzes (incrementally) and extracts the worst path as
// a bounded-path object, like the package-level CriticalPath but
// through the session's reused state.
func (s *Session) CriticalPath() (*delay.Path, *Result, error) {
	res, err := s.Analyze()
	if err != nil {
		return nil, nil, err
	}
	return criticalPathFrom(res, s.model, s.cfg)
}
