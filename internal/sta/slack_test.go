package sta

import (
	"math"
	"testing"
)

func TestSlacksTightConstraint(t *testing.T) {
	m := model()
	c := chainCircuit(t, 5, 12)
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly at the worst delay: the critical path has ~zero slack,
	// nothing violates.
	rep, err := res.Slacks(res.WorstDelay)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("violations at tc = worst delay: %d", rep.Violations)
	}
	if math.Abs(rep.WorstSlack) > 1e-6*res.WorstDelay {
		t.Fatalf("worst slack %g, want ≈0", rep.WorstSlack)
	}
	// Tighter: everything on the chain violates.
	tight, err := res.Slacks(res.WorstDelay * 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Violations == 0 || tight.WorstSlack >= 0 {
		t.Fatalf("no violations under an impossible constraint: %+v", tight)
	}
	// Looser: positive slack everywhere.
	loose, err := res.Slacks(res.WorstDelay * 2)
	if err != nil {
		t.Fatal(err)
	}
	if loose.WorstSlack <= 0 {
		t.Fatalf("loose constraint has non-positive worst slack %g", loose.WorstSlack)
	}
}

func TestSlacksOrderCriticalFirst(t *testing.T) {
	m := model()
	c := diamondCircuit(t)
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := res.Slacks(res.WorstDelay)
	if err != nil {
		t.Fatal(err)
	}
	worst := rep.CriticalBySlack(3)
	if len(worst) == 0 {
		t.Fatal("no slack-ordered candidates")
	}
	// The most critical node must be on the deep branch (s1..s3, j) —
	// never the fast branch f1.
	if worst[0].Name == "f1" {
		t.Fatal("shallow branch ranked most critical")
	}
	// Slacks must be ordered.
	for i := 1; i < len(worst); i++ {
		if rep.Slack(worst[i]) < rep.Slack(worst[i-1]) {
			t.Fatal("CriticalBySlack not ordered")
		}
	}
}

func TestSlacksConsistentWithArrival(t *testing.T) {
	// The per-edge slack is at least as large as the pessimistic
	// collapse required − worstArrival, and under a loose constraint
	// it grows by exactly the added margin.
	m := model()
	c := diamondCircuit(t)
	res, _ := Analyze(c, m, Config{})
	rep, err := res.Slacks(res.WorstDelay * 1.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Gates() {
		if math.IsInf(rep.Slack(n), 1) {
			continue
		}
		pessimistic := rep.Required(n) - res.Timing(n).Worst()
		if rep.Slack(n) < pessimistic-1e-9 {
			t.Fatalf("%s: slack %g below pessimistic bound %g", n.Name, rep.Slack(n), pessimistic)
		}
	}
	// Shifting tc shifts every finite slack by the same amount.
	rep2, err := res.Slacks(res.WorstDelay * 1.5)
	if err != nil {
		t.Fatal(err)
	}
	shift := res.WorstDelay * 0.2
	for _, n := range c.Gates() {
		if math.IsInf(rep.Slack(n), 1) {
			continue
		}
		if math.Abs(rep2.Slack(n)-rep.Slack(n)-shift) > 1e-9*res.WorstDelay {
			t.Fatalf("%s: slack did not shift with tc", n.Name)
		}
	}
}
