package sta

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/netlist"
)

// The K-most-critical-path extraction follows the spirit of the
// paper's reference [11] (Yen, Du, Ghanta, DAC'89): enumerate paths in
// decreasing delay order without enumerating the exponential path set.
// We run a best-first search on the (node, edge-polarity) state graph
// whose arc delays are frozen from an STA pass (slopes fixed at their
// propagated values — the standard linearization). The completion
// bound `rem` is exact on the frozen graph, so states are popped in
// exact descending order of achievable path delay.

type stateKey struct {
	n      *netlist.Node
	rising bool // polarity of the node's output edge
}

type partialPath struct {
	state  stateKey
	acc    float64 // delay accumulated from the path start to this state
	bound  float64 // acc + rem[state]
	parent *partialPath
}

type pathHeap []*partialPath

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return h[i].bound > h[j].bound }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(*partialPath)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// RankedPath is one extracted path with its frozen-graph delay estimate.
type RankedPath struct {
	Nodes []*netlist.Node // logic nodes in signal order
	Delay float64         // estimated worst delay (ps) on the frozen graph
}

// Signature returns a stable identity for deduplication across edge
// polarities.
func (rp RankedPath) Signature() string {
	names := make([]string, len(rp.Nodes))
	for i, n := range rp.Nodes {
		names[i] = n.Name
	}
	return strings.Join(names, ">")
}

// KWorstPaths returns up to k distinct gate chains in decreasing order
// of path delay (frozen-slope estimate). Paths that share the same gate
// sequence under both launch polarities are reported once, with the
// worse delay.
func KWorstPaths(c *netlist.Circuit, m *delay.Model, cfg Config, k int) ([]RankedPath, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sta: KWorstPaths needs k > 0, got %d", k)
	}
	res, err := Analyze(c, m, cfg)
	if err != nil {
		return nil, err
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}

	// arcDelay computes the frozen delay from driver state (d, rising)
	// through sink gate s, and the resulting output polarity. Vt-aware,
	// matching the forward pass: the frozen arcs must agree with the
	// arrivals of the Analyze result they are derived from.
	arcDelay := func(d *netlist.Node, rising bool, s *netlist.Node) (float64, bool) {
		if s.Type == gate.Output {
			return 0, rising
		}
		cell := s.Cell()
		cl := s.FanoutCap() + cell.Parasitic(s.CIn)
		dt := res.Timing(d)
		if cell.Invert {
			if rising {
				return res.Model.GateDelayHLVt(cell, s.CIn, cl, dt.TauRise, s.Vt), false
			}
			return res.Model.GateDelayLHVt(cell, s.CIn, cl, dt.TauFall, s.Vt), true
		}
		if rising {
			return res.Model.GateDelayLHVt(cell, s.CIn, cl, dt.TauRise, s.Vt), true
		}
		return res.Model.GateDelayHLVt(cell, s.CIn, cl, dt.TauFall, s.Vt), false
	}

	// rem[(n, e)]: max remaining delay from the output edge e of n to
	// any endpoint, on the frozen graph. Computed in reverse topo order.
	remR := make(map[*netlist.Node]float64, len(order))
	remF := make(map[*netlist.Node]float64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.Type == gate.Output {
			remR[n], remF[n] = 0, 0
			continue
		}
		bestR, bestF := 0.0, 0.0
		for _, s := range n.Fanout {
			dR, _ := arcDelay(n, true, s)
			dF, _ := arcDelay(n, false, s)
			var nextR, nextF float64
			if s.Type == gate.Output {
				nextR, nextF = 0, 0
			} else if s.Cell().Invert {
				nextR, nextF = remF[s], remR[s]
			} else {
				nextR, nextF = remR[s], remF[s]
			}
			if v := dR + nextR; v > bestR {
				bestR = v
			}
			if v := dF + nextF; v > bestF {
				bestF = v
			}
		}
		remR[n], remF[n] = bestR, bestF
	}
	rem := func(st stateKey) float64 {
		if st.rising {
			return remR[st.n]
		}
		return remF[st.n]
	}

	h := &pathHeap{}
	heap.Init(h)
	for _, in := range c.Inputs {
		for _, rising := range []bool{true, false} {
			st := stateKey{in, rising}
			heap.Push(h, &partialPath{state: st, acc: 0, bound: rem(st)})
		}
	}

	seen := make(map[string]bool)
	var out []RankedPath
	// Expansion budget guards against adversarial graphs; generous
	// enough for every benchmark in the suite.
	budget := 200000 * (k + 1)
	for h.Len() > 0 && len(out) < k && budget > 0 {
		budget--
		pp := heap.Pop(h).(*partialPath)
		n := pp.state.n
		if n.Type == gate.Output {
			rp := materialize(pp)
			if len(rp.Nodes) == 0 {
				continue
			}
			sig := rp.Signature()
			if !seen[sig] {
				seen[sig] = true
				out = append(out, rp)
			}
			continue
		}
		if len(n.Fanout) == 0 {
			continue // dangling net: not an observable endpoint
		}
		for _, s := range n.Fanout {
			d, nextRising := arcDelay(n, pp.state.rising, s)
			next := stateKey{s, nextRising}
			acc := pp.acc + d
			heap.Push(h, &partialPath{state: next, acc: acc, bound: acc + rem(next), parent: pp})
		}
	}
	// Defensive: order can only be violated if the budget truncated the
	// search; keep the contract anyway.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Delay > out[j].Delay })
	return out, nil
}

func materialize(pp *partialPath) RankedPath {
	var rev []*netlist.Node
	delayEst := pp.bound // endpoint: bound == acc
	for q := pp; q != nil; q = q.parent {
		if q.state.n.IsLogic() {
			rev = append(rev, q.state.n)
		}
	}
	nodes := make([]*netlist.Node, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return RankedPath{Nodes: nodes, Delay: delayEst}
}

// KWorstBoundedPaths extracts the k worst paths and converts each into
// a bounded-path object ready for the optimizers.
func KWorstBoundedPaths(c *netlist.Circuit, m *delay.Model, cfg Config, k int) ([]*delay.Path, error) {
	ranked, err := KWorstPaths(c, m, cfg, k)
	if err != nil {
		return nil, err
	}
	paths := make([]*delay.Path, 0, len(ranked))
	for i, rp := range ranked {
		pa, err := PathFromNodes(fmt.Sprintf("%s/path%d", c.Name, i), rp.Nodes, m, cfg)
		if err != nil {
			return nil, err
		}
		paths = append(paths, pa)
	}
	return paths, nil
}
