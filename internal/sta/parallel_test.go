package sta

import (
	"math"
	"sync"
	"testing"

	"repro/internal/iscas"
	"repro/internal/netlist"
)

// parallelTestCircuits returns a spread of randomized netlist shapes:
// suite-style generated circuits of varying size, a deep narrow carry
// chain and a wide layered random-logic block — every wavefront shape
// the scheduler sees.
func parallelTestCircuits(t testing.TB) []*netlist.Circuit {
	t.Helper()
	var out []*netlist.Circuit
	for _, spec := range []iscas.Spec{
		{Name: "pfuzz0", Inputs: 9, Outputs: 4, Gates: 70, PathLen: 11, Seed: 101},
		{Name: "pfuzz1", Inputs: 23, Outputs: 9, Gates: 310, PathLen: 33, Seed: 202},
		{Name: "pfuzz2", Inputs: 41, Outputs: 17, Gates: 900, PathLen: 52, Seed: 303},
	} {
		c, err := iscas.Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		out = append(out, c)
	}
	for _, name := range []string{"rca64", "mix6000"} {
		c, err := iscas.Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out = append(out, c)
	}
	return out
}

// bitsEq compares two float64 values for byte identity (bit-exact,
// including the sign of zero and NaN payloads).
func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestParallelAnalyzeByteIdentical: the wavefront forward pass must be
// byte-identical to the serial pass at every degree — including forced
// degrees far beyond any level's width, where most chunks are empty or
// run inline.
func TestParallelAnalyzeByteIdentical(t *testing.T) {
	m := model()
	for _, c := range parallelTestCircuits(t) {
		ref, err := Analyze(c, m, Config{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", c.Name, err)
		}
		for _, deg := range []int{-2, -3, -8, -64, 2, 4} {
			got, err := Analyze(c, m, Config{Parallelism: deg})
			if err != nil {
				t.Fatalf("%s deg=%d: %v", c.Name, deg, err)
			}
			if !bitsEq(got.WorstDelay, ref.WorstDelay) {
				t.Errorf("%s deg=%d: WorstDelay %v != %v", c.Name, deg, got.WorstDelay, ref.WorstDelay)
			}
			if got.WorstOutput != ref.WorstOutput || got.WorstRising != ref.WorstRising {
				t.Errorf("%s deg=%d: worst output %v/%v != %v/%v",
					c.Name, deg, got.WorstOutput, got.WorstRising, ref.WorstOutput, ref.WorstRising)
			}
			for _, n := range c.Nodes {
				gt, rt := got.Timing(n), ref.Timing(n)
				if !bitsEq(gt.TRise, rt.TRise) || !bitsEq(gt.TFall, rt.TFall) ||
					!bitsEq(gt.TauRise, rt.TauRise) || !bitsEq(gt.TauFall, rt.TauFall) {
					t.Fatalf("%s deg=%d: node %s timing %+v != %+v", c.Name, deg, n.Name, gt, rt)
				}
			}
		}
	}
}

// TestParallelSlacksByteIdentical: the reverse wavefront and the
// chunked slack fill must reproduce the serial backward pass bit for
// bit — per-node required times and slacks, the worst slack, and the
// violation count.
func TestParallelSlacksByteIdentical(t *testing.T) {
	m := model()
	for _, c := range parallelTestCircuits(t) {
		ref, err := Analyze(c, m, Config{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", c.Name, err)
		}
		// A tight constraint, so some slacks are negative and the
		// violation counter is exercised.
		tc := ref.WorstDelay * 0.9
		refRep, err := ref.Slacks(tc)
		if err != nil {
			t.Fatalf("%s serial slacks: %v", c.Name, err)
		}
		for _, deg := range []int{-2, -3, -8, -64, 2, 4} {
			got, err := Analyze(c, m, Config{Parallelism: deg})
			if err != nil {
				t.Fatalf("%s deg=%d: %v", c.Name, deg, err)
			}
			gotRep, err := got.Slacks(tc)
			if err != nil {
				t.Fatalf("%s deg=%d slacks: %v", c.Name, deg, err)
			}
			if !bitsEq(gotRep.WorstSlack, refRep.WorstSlack) {
				t.Errorf("%s deg=%d: WorstSlack %v != %v", c.Name, deg, gotRep.WorstSlack, refRep.WorstSlack)
			}
			if gotRep.Violations != refRep.Violations {
				t.Errorf("%s deg=%d: Violations %d != %d", c.Name, deg, gotRep.Violations, refRep.Violations)
			}
			for _, n := range c.Nodes {
				if !bitsEq(gotRep.Required(n), refRep.Required(n)) || !bitsEq(gotRep.Slack(n), refRep.Slack(n)) {
					t.Fatalf("%s deg=%d: node %s required/slack %v/%v != %v/%v", c.Name, deg, n.Name,
						gotRep.Required(n), gotRep.Slack(n), refRep.Required(n), refRep.Slack(n))
				}
			}
		}
	}
}

// TestParallelDeterminism50k drives the auto policy on a 50k-gate wide
// design under the race detector: concurrent sessions over independent
// circuit instances must agree with the serial answer exactly. This is
// the test the CI race job (GOMAXPROCS>=4) leans on.
func TestParallelDeterminism50k(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-gate design; skipped with -short")
	}
	m := model()
	ref, err := func() (*Result, error) {
		c, err := iscas.Load("mix50000")
		if err != nil {
			return nil, err
		}
		return Analyze(c, m, Config{Parallelism: 1})
	}()
	if err != nil {
		t.Fatal(err)
	}
	refRep, err := ref.Slacks(ref.WorstDelay)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := iscas.Load("mix50000")
			if err != nil {
				t.Error(err)
				return
			}
			res, err := Analyze(c, m, Config{}) // auto: clears the threshold
			if err != nil {
				t.Error(err)
				return
			}
			if !bitsEq(res.WorstDelay, ref.WorstDelay) {
				t.Errorf("parallel WorstDelay %v != serial %v", res.WorstDelay, ref.WorstDelay)
			}
			rep, err := res.Slacks(res.WorstDelay)
			if err != nil {
				t.Error(err)
				return
			}
			if !bitsEq(rep.WorstSlack, refRep.WorstSlack) || rep.Violations != refRep.Violations {
				t.Errorf("parallel slacks %v/%d != serial %v/%d",
					rep.WorstSlack, rep.Violations, refRep.WorstSlack, refRep.Violations)
			}
		}()
	}
	wg.Wait()
}

// TestSmallCircuitStaysAllocFree: with parallelism enabled globally
// (auto policy), a classic-suite-sized circuit must still take the
// serial path and keep the session round loop at zero allocations —
// the //pops:noalloc guarantee the threshold exists to protect.
func TestSmallCircuitStaysAllocFree(t *testing.T) {
	c, err := iscas.Load("c880")
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(c, model(), Config{Parallelism: 8})
	if _, err := sess.Analyze(); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	tc := res.WorstDelay
	allocs := testing.AllocsPerRun(10, func() {
		sess.Invalidate()
		if _, err := sess.Analyze(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("small-circuit re-analysis with Parallelism=8: %v allocs/op, want 0", allocs)
	}
	// Slacks allocates its report by design; pin only that the serial
	// branch is taken (no worker machinery) by checking the result is
	// identical to a serial session's.
	rep, err := res.Slacks(tc)
	if err != nil {
		t.Fatal(err)
	}
	serial := NewSession(c, model(), Config{Parallelism: 1})
	sres, err := serial.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	srep, err := sres.Slacks(tc)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEq(rep.WorstSlack, srep.WorstSlack) || rep.Violations != srep.Violations {
		t.Errorf("slack report diverged: %v/%d != %v/%d",
			rep.WorstSlack, rep.Violations, srep.WorstSlack, srep.Violations)
	}
}

// BenchmarkWavefrontSTA measures the full timing view (Invalidate +
// Analyze + Slacks) of the two large benchmark shapes at forced worker
// counts. mix50000 levelizes ~450 wide — the wavefront's home turf;
// rca6000 levelizes 4-5 wide — the adversarial deep shape where the
// scheduler must not lose to serial. On a single-core host every row
// collapses onto serial time plus scheduling overhead.
func BenchmarkWavefrontSTA(b *testing.B) {
	m := model()
	for _, name := range []string{"mix50000", "rca6000"} {
		c, err := iscas.Load(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			deg := -workers // force: the benchmark measures scheduling, not the policy
			if workers == 1 {
				deg = 1
			}
			sess := NewSession(c, m, Config{Parallelism: deg})
			if _, err := sess.Analyze(); err != nil {
				b.Fatal(err)
			}
			b.Run(name+"/workers="+string(rune('0'+workers)), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sess.Invalidate()
					res, err := sess.Analyze()
					if err != nil {
						b.Fatal(err)
					}
					if _, err := res.Slacks(res.WorstDelay); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
