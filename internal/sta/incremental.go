package sta

import (
	"fmt"
	"math"

	"repro/internal/gate"
	"repro/internal/netlist"
)

// Incremental timing update, in the spirit of the paper's reference
// [12] (Crémoux, Azemard, Auvergne, "Path resizing based on
// incremental technique", ISCAS'98): after a handful of gates change
// size, only the affected cone is re-propagated instead of the whole
// circuit. A resized gate perturbs (a) its own stage delay and output
// transitions and (b) the load — hence timing — of its *drivers*, so
// the dirty set is seeded with the changed nodes and their fanins, and
// propagation stops wherever the recomputed timing matches the cached
// one.

// timingEps is the relative tolerance below which a recomputed arrival
// or transition is considered unchanged and propagation is cut.
const timingEps = 1e-12

// Update re-propagates timing after the given nodes changed size (or
// had their wire load edited). It returns the number of nodes
// recomputed. The caller must not have changed the circuit's
// *structure* — after mutations (insertions, rewrites), run a fresh
// Analyze instead.
func (r *Result) Update(changed ...*netlist.Node) (int, error) {
	if len(r.order) != len(r.Circuit.Nodes) {
		return 0, fmt.Errorf("sta: circuit structure changed since Analyze; run a fresh analysis")
	}
	dirty := make(map[*netlist.Node]bool, 4*len(changed))
	for _, n := range changed {
		if r.Circuit.Node(n.Name) != n {
			return 0, fmt.Errorf("sta: node %s is not part of the analyzed circuit", n.Name)
		}
		dirty[n] = true
		for _, f := range n.Fanin {
			dirty[f] = true // the driver's load changed
		}
	}

	recomputed := 0
	tauIn := r.Config.inputTau(r.Model.Proc)
	for _, n := range r.order {
		if !dirty[n] {
			continue
		}
		old := r.Timing[n]
		switch {
		case n.Type == gate.Input:
			r.Timing[n] = NodeTiming{TauRise: tauIn, TauFall: tauIn}
		case n.Type == gate.Output:
			d := n.Fanin[0]
			r.Timing[n] = r.Timing[d]
			r.predRise[n] = d
			r.predFall[n] = d
		default:
			r.analyzeGate(n)
		}
		recomputed++
		if !sameTiming(old, r.Timing[n]) {
			for _, s := range n.Fanout {
				dirty[s] = true
			}
		}
	}

	// Refresh the worst endpoint over all outputs (cheap).
	r.WorstDelay = math.Inf(-1)
	r.WorstOutput = nil
	for _, o := range r.Circuit.Outputs {
		dt := r.Timing[o]
		if dt.TRise > r.WorstDelay {
			r.WorstDelay, r.WorstOutput, r.WorstRising = dt.TRise, o, true
		}
		if dt.TFall > r.WorstDelay {
			r.WorstDelay, r.WorstOutput, r.WorstRising = dt.TFall, o, false
		}
	}
	if r.WorstOutput == nil {
		return recomputed, fmt.Errorf("sta: circuit %s lost its outputs", r.Circuit.Name)
	}
	return recomputed, nil
}

func sameTiming(a, b NodeTiming) bool {
	return relClose(a.TRise, b.TRise) && relClose(a.TFall, b.TFall) &&
		relClose(a.TauRise, b.TauRise) && relClose(a.TauFall, b.TauFall)
}

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= timingEps*scale
}
