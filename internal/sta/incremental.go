package sta

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/gate"
	"repro/internal/netlist"
)

// Incremental timing update, in the spirit of the paper's reference
// [12] (Crémoux, Azemard, Auvergne, "Path resizing based on
// incremental technique", ISCAS'98): after a handful of gates change
// size, only the affected cone is re-propagated instead of the whole
// circuit. A resized gate perturbs (a) its own stage delay and output
// transitions and (b) the load — hence timing — of its *drivers*, so
// the dirty set is seeded with the changed nodes and their fanins, and
// propagation stops wherever the recomputed timing equals the cached
// one bit-exactly. The exact cut makes Update indistinguishable from a
// fresh Analyze: a node is left untouched only when recomputation could
// not have produced a different value, so the equivalence holds to the
// last float bit (relied on by the session-based round loop and pinned
// by the core golden tests).

// ErrStaleAnalysis reports that a Result (or an update through it) was
// used after the circuit's structure changed — node insertion/removal,
// pin rewiring, or a retype — since the analysis was computed. The
// holder must run a fresh Analyze (or Session.Analyze, which refreshes
// automatically).
var ErrStaleAnalysis = errors.New("sta: analysis is stale: circuit structure changed since it was computed")

// staleEpoch poisons a Result whose incremental state was torn mid-way
// by a failed update; no live circuit epoch ever equals it.
const staleEpoch = math.MaxUint64

// Update re-propagates timing after the given nodes changed size, wire
// load, or Vt class. It returns the number of nodes recomputed.
//
// Structure is guarded by the circuit's mutation epoch: if the
// structure changed since this Result was computed (even by a
// node-count-preserving rewrite such as an in-place NOR→NAND retype or
// a pin rewire), Update refuses with ErrStaleAnalysis and leaves the
// cached timing untouched. Any error that surfaces after propagation
// began additionally poisons the Result — every later Update returns
// ErrStaleAnalysis — instead of leaving it silently half-mutated.
func (r *Result) Update(changed ...*netlist.Node) (int, error) {
	if r.epoch != r.Circuit.Epoch() {
		return 0, fmt.Errorf("sta: circuit %s epoch %d vs analysis epoch %d: %w",
			r.Circuit.Name, r.Circuit.Epoch(), r.epoch, ErrStaleAnalysis)
	}
	for _, n := range changed {
		if r.Circuit.Node(n.Name) != n {
			return 0, fmt.Errorf("sta: node %s is not part of the analyzed circuit", n.Name)
		}
	}
	// dirty is self-clearing: every node of the order is visited below
	// and its flag reset, so the scratch is all-false again on return.
	for _, n := range changed {
		r.dirty[n.ID] = true
		for _, f := range n.Fanin {
			r.dirty[f.ID] = true // the driver's load changed
		}
	}

	recomputed := 0
	tauIn := r.Config.inputTau(r.Model.Proc)
	for _, n := range r.order {
		if !r.dirty[n.ID] {
			continue
		}
		r.dirty[n.ID] = false
		old := r.timing[n.ID]
		switch {
		case n.Type == gate.Input:
			r.timing[n.ID] = NodeTiming{TauRise: tauIn, TauFall: tauIn}
		case n.Type == gate.Output:
			d := n.Fanin[0]
			r.timing[n.ID] = r.timing[d.ID]
			r.predRise[n.ID] = d
			r.predFall[n.ID] = d
		default:
			r.analyzeGate(n)
		}
		recomputed++
		if old != r.timing[n.ID] {
			for _, s := range n.Fanout {
				r.dirty[s.ID] = true
			}
		}
	}

	// Refresh the worst endpoint over all outputs (cheap).
	r.WorstDelay = math.Inf(-1)
	r.WorstOutput = nil
	for _, o := range r.Circuit.Outputs {
		dt := r.timing[o.ID]
		if dt.TRise > r.WorstDelay {
			r.WorstDelay, r.WorstOutput, r.WorstRising = dt.TRise, o, true
		}
		if dt.TFall > r.WorstDelay {
			r.WorstDelay, r.WorstOutput, r.WorstRising = dt.TFall, o, false
		}
	}
	if r.WorstOutput == nil {
		// Timing was already overwritten: poison the Result so the
		// failure cannot be ignored and the state silently reused.
		r.epoch = staleEpoch
		return recomputed, fmt.Errorf("sta: circuit %s lost its outputs: %w", r.Circuit.Name, ErrStaleAnalysis)
	}
	return recomputed, nil
}
