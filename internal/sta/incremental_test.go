package sta

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/delay"
	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/tech"
)

func TestIncrementalMatchesFullAnalysis(t *testing.T) {
	// Property: after arbitrary size changes, Update produces exactly
	// the timing a fresh Analyze would.
	p := tech.CMOS025()
	m := delay.NewModel(p)
	spec, err := iscas.ByName("c432")
	if err != nil {
		t.Fatal(err)
	}
	c := iscas.MustGenerate(spec)
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	gates := c.Gates()
	for trial := 0; trial < 12; trial++ {
		var changed []*netlist.Node
		for k := 0; k < 1+rng.Intn(4); k++ {
			g := gates[rng.Intn(len(gates))]
			g.CIn = p.ClampCap(p.CRef * math.Exp(rng.Float64()*4))
			changed = append(changed, g)
		}
		if _, err := res.Update(changed...); err != nil {
			t.Fatal(err)
		}
		fresh, err := Analyze(c, m, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.WorstDelay-fresh.WorstDelay) > 1e-9*fresh.WorstDelay {
			t.Fatalf("trial %d: incremental %g vs fresh %g", trial, res.WorstDelay, fresh.WorstDelay)
		}
		for _, n := range c.Gates() {
			a, b := res.Timing(n), fresh.Timing(n)
			if math.Abs(a.TRise-b.TRise) > 1e-9*math.Max(1, b.TRise) ||
				math.Abs(a.TFall-b.TFall) > 1e-9*math.Max(1, b.TFall) {
				t.Fatalf("trial %d: node %s diverged: %+v vs %+v", trial, n.Name, a, b)
			}
		}
	}
}

func TestIncrementalPrunesCone(t *testing.T) {
	// Changing the last gate of a long chain must touch only a
	// handful of nodes, not the whole circuit.
	m := delay.NewModel(tech.CMOS025())
	c := chainCircuit(t, 30, 12)
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	last := c.Node("g" + string(rune('0'+29)))
	if last == nil {
		// Chain names use single characters; for n=30 build names
		// differently — fall back to the last gate in order.
		gs := c.Gates()
		last = gs[len(gs)-1]
	}
	last.CIn *= 3
	n, err := res.Update(last)
	if err != nil {
		t.Fatal(err)
	}
	// The cone is: the gate, its driver, and the PO — far below 30.
	if n > 6 {
		t.Fatalf("recomputed %d nodes for a tail-gate change", n)
	}
}

func TestIncrementalDetectsStructureChange(t *testing.T) {
	m := delay.NewModel(tech.CMOS025())
	c := chainCircuit(t, 4, 12)
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := c.Gates()[1]
	// Structural mutation invalidates the cached order.
	if _, _, err := c.InsertBufferPair(g, g.Fanout, 2, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Update(g); err == nil {
		t.Fatal("stale incremental update accepted after mutation")
	}
}

func TestIncrementalRejectsForeignNode(t *testing.T) {
	m := delay.NewModel(tech.CMOS025())
	c := chainCircuit(t, 4, 12)
	d := chainCircuit(t, 4, 12)
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Update(d.Gates()[0]); err == nil {
		t.Fatal("node from another circuit accepted")
	}
}

func TestIncrementalUpstreamLoadEffect(t *testing.T) {
	// Resizing a gate changes its driver's delay (load effect): the
	// driver must be recomputed even though it sits upstream.
	m := delay.NewModel(tech.CMOS025())
	c := chainCircuit(t, 5, 12)
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	gs := c.Gates()
	mid := gs[2]
	driver := gs[1]
	before := res.Timing(driver)
	mid.CIn *= 8
	if _, err := res.Update(mid); err != nil {
		t.Fatal(err)
	}
	after := res.Timing(driver)
	if before.TauRise == after.TauRise && before.TauFall == after.TauFall {
		t.Fatal("driver transitions unchanged despite load change")
	}
}
