package sta

import (
	"math"
	"sort"

	"repro/internal/gate"
	"repro/internal/netlist"
)

// SlackReport carries required times and slacks against a delay
// constraint — the "iterative timing verification" view the paper's
// §1 mentions when sizing perturbs adjacent paths.
type SlackReport struct {
	Tc float64
	// Required maps each node to the latest arrival its output may
	// have without violating Tc at any reachable output (worst edge).
	Required map[*netlist.Node]float64
	// Slack is Required − Arrival (worst edge); negative = violating.
	Slack map[*netlist.Node]float64
	// WorstSlack is the minimum slack over all nodes.
	WorstSlack float64
	// Violations counts nodes with negative slack.
	Violations int
}

// Slacks computes required times by a backward pass over the frozen
// arc delays of this analysis, against constraint tc at every primary
// output. The returned report shares node identity with the circuit.
func (r *Result) Slacks(tc float64) (*SlackReport, error) {
	order, err := r.Circuit.TopoOrder()
	if err != nil {
		return nil, err
	}
	rep := &SlackReport{
		Tc:         tc,
		Required:   make(map[*netlist.Node]float64, len(order)),
		Slack:      make(map[*netlist.Node]float64, len(order)),
		WorstSlack: math.Inf(1),
	}
	// Edge-aware backward pass, matching the edge-aware forward pass:
	// a rising output of n constrains against the sink's opposite (for
	// inverting cells) or same (buffers) output edge. Collapsing edges
	// to per-arc maxima would be pessimistic — alternation means a
	// gate's worse edge need not chain with its successor's.
	reqR := make(map[*netlist.Node]float64, len(order))
	reqF := make(map[*netlist.Node]float64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.Type == gate.Output {
			reqR[n], reqF[n] = tc, tc
			continue
		}
		rr, rf := math.Inf(1), math.Inf(1)
		dt := r.Timing[n]
		for _, s := range n.Fanout {
			if s.Type == gate.Output {
				if reqR[s] < rr {
					rr = reqR[s]
				}
				if reqF[s] < rf {
					rf = reqF[s]
				}
				continue
			}
			cell := s.Cell()
			cl := s.FanoutCap() + cell.Parasitic(s.CIn)
			if cell.Invert {
				// n rising → s falls; n falling → s rises.
				if v := reqF[s] - r.Model.GateDelayHLVt(cell, s.CIn, cl, dt.TauRise, s.Vt); v < rr {
					rr = v
				}
				if v := reqR[s] - r.Model.GateDelayLHVt(cell, s.CIn, cl, dt.TauFall, s.Vt); v < rf {
					rf = v
				}
			} else {
				if v := reqR[s] - r.Model.GateDelayLHVt(cell, s.CIn, cl, dt.TauRise, s.Vt); v < rr {
					rr = v
				}
				if v := reqF[s] - r.Model.GateDelayHLVt(cell, s.CIn, cl, dt.TauFall, s.Vt); v < rf {
					rf = v
				}
			}
		}
		reqR[n], reqF[n] = rr, rf
	}
	for _, n := range order {
		rr, rf := reqR[n], reqF[n]
		if math.IsInf(rr, 1) && math.IsInf(rf, 1) {
			// Dangling logic: unconstrained.
			rep.Required[n] = math.Inf(1)
			rep.Slack[n] = math.Inf(1)
			continue
		}
		var aR, aF float64
		if n.Type != gate.Input {
			aR, aF = r.Timing[n].TRise, r.Timing[n].TFall
		}
		sl := math.Min(rr-aR, rf-aF)
		rep.Required[n] = math.Min(rr, rf)
		rep.Slack[n] = sl
		if sl < rep.WorstSlack {
			rep.WorstSlack = sl
		}
		// Count violations beyond numerical noise on the tc scale.
		if sl < -1e-9*math.Abs(tc) {
			rep.Violations++
		}
	}
	return rep, nil
}

// CriticalBySlack returns up to k logic nodes ordered by increasing
// slack — the resize/buffer candidates an incremental flow would visit
// first.
func (rep *SlackReport) CriticalBySlack(k int) []*netlist.Node {
	type cand struct {
		n  *netlist.Node
		sl float64
	}
	var cands []cand
	for n, sl := range rep.Slack {
		if n.IsLogic() && !math.IsInf(sl, 1) {
			cands = append(cands, cand{n, sl})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sl != cands[j].sl {
			return cands[i].sl < cands[j].sl
		}
		return cands[i].n.ID < cands[j].n.ID
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]*netlist.Node, 0, k)
	for _, c := range cands[:k] {
		out = append(out, c.n)
	}
	return out
}
