package sta

import (
	"math"
	"sort"

	"repro/internal/gate"
	"repro/internal/netlist"
	"repro/internal/par"
)

// SlackReport carries required times and slacks against a delay
// constraint — the "iterative timing verification" view the paper's
// §1 mentions when sizing perturbs adjacent paths. Per-node values are
// stored densely by Node.ID; use Required and Slack to read them.
type SlackReport struct {
	Tc float64
	// WorstSlack is the minimum slack over all nodes.
	WorstSlack float64
	// Violations counts nodes with negative slack.
	Violations int

	circuit  *netlist.Circuit
	required []float64 // by Node.ID; +Inf = unconstrained
	slack    []float64 // by Node.ID; +Inf = unconstrained
}

// Required returns the latest arrival the node's output may have
// without violating Tc at any reachable output (worst edge); +Inf for
// dangling (unconstrained) nodes.
func (rep *SlackReport) Required(n *netlist.Node) float64 {
	if n == nil || n.ID >= len(rep.required) {
		return math.Inf(1)
	}
	return rep.required[n.ID]
}

// Slack returns Required − Arrival (worst edge); negative = violating,
// +Inf = unconstrained.
func (rep *SlackReport) Slack(n *netlist.Node) float64 {
	if n == nil || n.ID >= len(rep.slack) {
		return math.Inf(1)
	}
	return rep.slack[n.ID]
}

// Slacks computes required times by a backward pass over the frozen
// arc delays of this analysis, against constraint tc at every primary
// output. The returned report shares node identity with the circuit.
func (r *Result) Slacks(tc float64) (*SlackReport, error) {
	if r.epoch != r.Circuit.Epoch() {
		return nil, ErrStaleAnalysis
	}
	order := r.order
	idBound := r.Circuit.IDBound()
	rep := &SlackReport{
		Tc:         tc,
		WorstSlack: math.Inf(1),
		circuit:    r.Circuit,
		required:   make([]float64, idBound),
		slack:      make([]float64, idBound),
	}
	// Edge-aware backward pass, matching the edge-aware forward pass:
	// a rising output of n constrains against the sink's opposite (for
	// inverting cells) or same (buffers) output edge. Collapsing edges
	// to per-arc maxima would be pessimistic — alternation means a
	// gate's worse edge need not chain with its successor's.
	if cap(r.reqR) < idBound {
		r.reqR = make([]float64, idBound)
		r.reqF = make([]float64, idBound)
	}
	reqR := r.reqR[:idBound]
	reqF := r.reqF[:idBound]
	if workers := par.Degree(r.Config.Parallelism, len(order), staParallelMinNodes); workers > 1 {
		r.slacksWavefront(rep, tc, reqR, reqF, workers)
		return rep, nil
	}
	for i := len(order) - 1; i >= 0; i-- {
		r.requiredAt(order[i], tc, reqR, reqF)
	}
	for _, n := range order {
		sl := r.slackAt(rep, n, reqR, reqF)
		if sl < rep.WorstSlack {
			rep.WorstSlack = sl
		}
		// Count violations beyond numerical noise on the tc scale.
		if sl < -1e-9*math.Abs(tc) {
			rep.Violations++
		}
	}
	return rep, nil
}

// requiredAt computes node n's required times against its fanouts'
// (already computed, strictly higher-level) required times, writing
// its reqR/reqF slots. Shared verbatim by the serial reverse loop and
// the parallel reverse wavefront, so the two paths cannot diverge.
func (r *Result) requiredAt(n *netlist.Node, tc float64, reqR, reqF []float64) {
	if n.Type == gate.Output {
		reqR[n.ID], reqF[n.ID] = tc, tc
		return
	}
	rr, rf := math.Inf(1), math.Inf(1)
	dt := r.timing[n.ID]
	for _, s := range n.Fanout {
		if s.Type == gate.Output {
			if reqR[s.ID] < rr {
				rr = reqR[s.ID]
			}
			if reqF[s.ID] < rf {
				rf = reqF[s.ID]
			}
			continue
		}
		cell := s.Cell()
		cl := s.FanoutCap() + cell.Parasitic(s.CIn)
		if cell.Invert {
			// n rising → s falls; n falling → s rises.
			if v := reqF[s.ID] - r.Model.GateDelayHLVt(cell, s.CIn, cl, dt.TauRise, s.Vt); v < rr {
				rr = v
			}
			if v := reqR[s.ID] - r.Model.GateDelayLHVt(cell, s.CIn, cl, dt.TauFall, s.Vt); v < rf {
				rf = v
			}
		} else {
			if v := reqR[s.ID] - r.Model.GateDelayLHVt(cell, s.CIn, cl, dt.TauRise, s.Vt); v < rr {
				rr = v
			}
			if v := reqF[s.ID] - r.Model.GateDelayHLVt(cell, s.CIn, cl, dt.TauFall, s.Vt); v < rf {
				rf = v
			}
		}
	}
	reqR[n.ID], reqF[n.ID] = rr, rf
}

// slackAt derives and stores node n's required time and slack from the
// finished backward pass, returning the slack (+Inf for dangling,
// unconstrained logic).
func (r *Result) slackAt(rep *SlackReport, n *netlist.Node, reqR, reqF []float64) float64 {
	rr, rf := reqR[n.ID], reqF[n.ID]
	if math.IsInf(rr, 1) && math.IsInf(rf, 1) {
		// Dangling logic: unconstrained.
		rep.required[n.ID] = math.Inf(1)
		rep.slack[n.ID] = math.Inf(1)
		return math.Inf(1)
	}
	var aR, aF float64
	if n.Type != gate.Input {
		aR, aF = r.timing[n.ID].TRise, r.timing[n.ID].TFall
	}
	sl := math.Min(rr-aR, rf-aF)
	rep.required[n.ID] = math.Min(rr, rf)
	rep.slack[n.ID] = sl
	return sl
}

// slacksWavefront is the parallel backward pass: a reverse wavefront
// fills the per-edge required times (every fanout of a node sits at a
// strictly greater level, so its slots are final before the node
// runs), a fork-join chunked pass fills the per-node required/slack
// arrays (no cross-node dependency at all), and a serial topo-order
// scan replays the serial loop's WorstSlack/Violations comparison
// sequence. The per-node math is the exact helpers the serial path
// runs, so the report is byte-identical at any degree.
func (r *Result) slacksWavefront(rep *SlackReport, tc float64, reqR, reqF []float64, workers int) {
	lv := r.wavefrontLevels()
	par.Wavefront(workers, lv.Offsets, staMinSpan, true, func(lo, hi int) {
		for _, n := range lv.Order[lo:hi] {
			r.requiredAt(n, tc, reqR, reqF)
		}
	})
	order := r.order
	par.Run(workers, func(i int) {
		lo, hi := par.Chunk(i, workers, len(order))
		for _, n := range order[lo:hi] {
			r.slackAt(rep, n, reqR, reqF)
		}
	})
	for _, n := range order {
		sl := rep.slack[n.ID]
		if sl < rep.WorstSlack {
			rep.WorstSlack = sl
		}
		if sl < -1e-9*math.Abs(tc) {
			rep.Violations++
		}
	}
}

// CriticalBySlack returns up to k logic nodes ordered by increasing
// slack — the resize/buffer candidates an incremental flow would visit
// first.
func (rep *SlackReport) CriticalBySlack(k int) []*netlist.Node {
	type cand struct {
		n  *netlist.Node
		sl float64
	}
	var cands []cand
	for _, n := range rep.circuit.Nodes {
		sl := rep.Slack(n)
		if n.IsLogic() && !math.IsInf(sl, 1) {
			cands = append(cands, cand{n, sl})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sl != cands[j].sl {
			return cands[i].sl < cands[j].sl
		}
		return cands[i].n.ID < cands[j].n.ID
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]*netlist.Node, 0, k)
	for _, c := range cands[:k] {
		out = append(out, c.n)
	}
	return out
}
