package sta

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/iscas"
	"repro/internal/tech"
)

// TestVtAwareAnalysis checks that STA honors per-node Vt classes: an
// all-SVT run is bit-identical to the historical analysis (the zero
// value changes nothing), promoting a gate on the critical path slows
// the circuit, and promoting it back restores the exact baseline.
func TestVtAwareAnalysis(t *testing.T) {
	m := delay.NewModel(tech.CMOS025())
	c, err := iscas.Load("fpd")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	crit := base.CriticalNodes()
	if len(crit) == 0 {
		t.Fatal("empty critical path")
	}
	mid := crit[len(crit)/2]

	mid.Vt = tech.HVT
	slow, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if slow.WorstDelay <= base.WorstDelay {
		t.Fatalf("HVT on the critical path did not slow the circuit: %v vs %v",
			slow.WorstDelay, base.WorstDelay)
	}

	mid.Vt = tech.LVT
	fast, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fast.WorstDelay >= base.WorstDelay {
		t.Fatalf("LVT on the critical path did not speed the circuit: %v vs %v",
			fast.WorstDelay, base.WorstDelay)
	}

	mid.Vt = tech.SVT
	restored, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.WorstDelay != base.WorstDelay {
		t.Fatalf("restoring SVT did not restore the exact baseline: %v vs %v",
			restored.WorstDelay, base.WorstDelay)
	}
}

// TestVtIncrementalMatchesFull checks that the incremental update after
// a Vt swap lands on exactly the timing a fresh full analysis computes.
func TestVtIncrementalMatchesFull(t *testing.T) {
	m := delay.NewModel(tech.CMOS025())
	c, err := iscas.Load("c432")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a non-critical gate: last gate by ID outside the critical set.
	critical := map[string]bool{}
	for _, n := range res.CriticalNodes() {
		critical[n.Name] = true
	}
	var target = c.Nodes[0]
	for _, n := range c.Nodes {
		if n.IsLogic() && !critical[n.Name] {
			target = n
		}
	}
	target.Vt = tech.HVT
	if _, err := res.Update(target); err != nil {
		t.Fatal(err)
	}
	fresh, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstDelay != fresh.WorstDelay {
		t.Fatalf("incremental worst %v, full %v", res.WorstDelay, fresh.WorstDelay)
	}
	for _, n := range c.Nodes {
		if res.Timing(n) != fresh.Timing(n) {
			t.Fatalf("node %s timing diverged: %+v vs %+v", n.Name, res.Timing(n), fresh.Timing(n))
		}
	}
}

// TestVtSlacksReflectClass checks the backward pass: making every gate
// HVT shrinks the worst slack against a fixed constraint.
func TestVtSlacksReflectClass(t *testing.T) {
	m := delay.NewModel(tech.CMOS025())
	c, err := iscas.Load("fpd")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tc := res.WorstDelay * 1.2
	before, err := res.Slacks(tc)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		if n.IsLogic() {
			n.Vt = tech.HVT
		}
	}
	res2, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := res2.Slacks(tc)
	if err != nil {
		t.Fatal(err)
	}
	if after.WorstSlack >= before.WorstSlack {
		t.Fatalf("all-HVT worst slack %v not below all-SVT %v", after.WorstSlack, before.WorstSlack)
	}
}
