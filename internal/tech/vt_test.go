package tech

import (
	"math"
	"testing"
)

func TestVtDefaultsValidate(t *testing.T) {
	p := CMOS025()
	if err := p.Validate(); err != nil {
		t.Fatalf("default corner with Vt table invalid: %v", err)
	}
}

func TestVtZeroValueIsSVT(t *testing.T) {
	var v VtClass
	if v != SVT {
		t.Fatalf("zero VtClass = %v, want SVT", v)
	}
}

func TestVtPromotionLadder(t *testing.T) {
	steps := []struct {
		from, to VtClass
		ok       bool
	}{
		{LVT, SVT, true},
		{SVT, HVT, true},
		{HVT, HVT, false},
	}
	for _, s := range steps {
		got, ok := s.from.Promote()
		if ok != s.ok || (ok && got != s.to) {
			t.Fatalf("Promote(%v) = %v,%v want %v,%v", s.from, got, ok, s.to, s.ok)
		}
	}
	order := VtClasses()
	for i := 1; i < len(order); i++ {
		if order[i].Rank() <= order[i-1].Rank() {
			t.Fatalf("rank not increasing at %v", order[i])
		}
	}
}

func TestVtDriveOrdering(t *testing.T) {
	p := CMOS025()
	if p.VtDriveN(SVT) != 1 || p.VtDriveP(SVT) != 1 {
		t.Fatalf("SVT drive must be exactly 1, got %v/%v", p.VtDriveN(SVT), p.VtDriveP(SVT))
	}
	if !(p.VtDriveN(LVT) > 1 && p.VtDriveN(HVT) < 1) {
		t.Fatalf("N drive ordering broken: LVT %v, HVT %v", p.VtDriveN(LVT), p.VtDriveN(HVT))
	}
	if !(p.VtDriveP(LVT) > 1 && p.VtDriveP(HVT) < 1) {
		t.Fatalf("P drive ordering broken: LVT %v, HVT %v", p.VtDriveP(LVT), p.VtDriveP(HVT))
	}
}

func TestVtLeakageOrdering(t *testing.T) {
	p := CMOS025()
	if !(p.Vt[LVT].ILeakN > p.Vt[SVT].ILeakN && p.Vt[SVT].ILeakN > p.Vt[HVT].ILeakN) {
		t.Fatal("N leakage must fall with threshold rank")
	}
	// Roughly an order of magnitude per class.
	if r := p.Vt[SVT].ILeakN / p.Vt[HVT].ILeakN; r < 5 || r > 30 {
		t.Fatalf("SVT/HVT leakage ratio %v outside the order-of-magnitude band", r)
	}
}

func TestVtValidateRejections(t *testing.T) {
	cases := []func(p *Process){
		func(p *Process) { p.Vt[SVT].DeltaVT = 0.01 },                  // shifted reference
		func(p *Process) { p.Vt[HVT].DeltaVT = 1.0 },                   // threshold out of range
		func(p *Process) { p.Vt[HVT].ILeakN = -1 },                     // negative leakage
		func(p *Process) { p.Vt[HVT].ILeakN = p.Vt[LVT].ILeakN * 2 },   // ordering broken
		func(p *Process) { p.Vt[LVT].DeltaVT = p.Vt[HVT].DeltaVT + 1 }, // shift ordering broken
	}
	for i, mutate := range cases {
		p := CMOS025()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: corrupted Vt table accepted", i)
		}
	}
}

func TestVtStringAndValid(t *testing.T) {
	for _, v := range VtClasses() {
		if !v.Valid() {
			t.Fatalf("%v not valid", v)
		}
	}
	if VtClass(99).Valid() {
		t.Fatal("out-of-range class valid")
	}
	if SVT.String() != "svt" || LVT.String() != "lvt" || HVT.String() != "hvt" {
		t.Fatal("class names drifted")
	}
}

func TestVtCloneIndependent(t *testing.T) {
	p := CMOS025()
	q := p.Clone()
	q.Vt[HVT].ILeakN = 99
	if p.Vt[HVT].ILeakN == 99 {
		t.Fatal("Clone shares the Vt table")
	}
	if math.Abs(q.VtShiftN(HVT)-p.VTN-q.Vt[HVT].DeltaVT) > 1e-15 {
		t.Fatal("VtShiftN inconsistent")
	}
}
