// Package tech models the CMOS process technology underlying the POPS
// optimization protocol (Verle et al., DATE 2005).
//
// The paper's experiments target a 0.25 µm industrial process. Only a
// handful of abstracted parameters reach the delay model of eq. (1-3):
// the process time unit τ, the N/P current ratio R, the library P/N
// configuration ratio k, the reduced transistor thresholds vTN and vTP,
// the gate capacitance per micron of transistor width, and the minimum
// available drive CREF. This package defines those parameters, a
// calibrated 0.25 µm-class default corner, and the handful of derived
// quantities (Miller coupling ratios, symmetry-factor prefactors) shared
// by every downstream package.
//
// Units used throughout the repository: time in picoseconds (ps),
// capacitance in femtofarads (fF), transistor width in microns (µm),
// voltage in volts (V), current in microamperes (µA).
package tech

import (
	"errors"
	"fmt"
)

// Process holds the abstracted technology parameters consumed by the
// closed-form delay model and by the transistor-level simulator.
type Process struct {
	// Name identifies the corner, e.g. "cmos025".
	Name string

	// Tau is the process metric time unit τ of eq. (2), in ps. It
	// characterizes the intrinsic speed of the process.
	Tau float64

	// R is the ratio of the current available in an N transistor to
	// that of a P transistor of identical width (µN/µP effective).
	R float64

	// K is the library P/N configuration ratio k = WP/WN used for the
	// reference inverter and, by convention, all library cells.
	K float64

	// VTN and VTP are the reduced threshold voltages VT/VDD of the N
	// and P transistors (dimensionless, eq. 1).
	VTN float64
	VTP float64

	// S0 is the dimensionless symmetry-factor prefactor calibrating
	// eq. (3) against the process: S_HL = S0·(1+k)·DW_HL.
	S0 float64

	// CgPerMicron is the gate capacitance per micron of transistor
	// width, in fF/µm. Input pin capacitance is CgPerMicron·(WN+WP).
	CgPerMicron float64

	// CRef is the input capacitance of the minimum available drive
	// (the smallest library inverter), in fF. It seeds the Tmin
	// iteration of §3.1 and is the lower clamp of every sizing
	// variable.
	CRef float64

	// CMax is the input capacitance of the largest realizable drive,
	// in fF. It bounds the optimization space from above.
	CMax float64

	// VDD is the supply voltage in volts (transistor-level simulator
	// only; the closed-form model is supply-normalized).
	VDD float64

	// Alpha is the alpha-power-law velocity-saturation index used by
	// the transistor-level simulator (α = 2 is the long-channel
	// Shichman-Hodges limit; deep submicron sits near 1.3-1.5).
	Alpha float64

	// KPN is the N transconductance factor of the alpha-power model,
	// in µA/µm at (VGS-VT) = 1 V. The P factor is KPN/R.
	KPN float64

	// VDSatRatio is the fraction of (VGS-VT) at which the simulated
	// device enters saturation (Sakurai-Newton linear/saturation
	// boundary).
	VDSatRatio float64

	// CDiffPerMicron is the drain diffusion capacitance per micron of
	// transistor width, in fF/µm. It sets the self-loading parasitic
	// of every gate.
	CDiffPerMicron float64

	// Vt is the multi-threshold extension of the corner: per-VtClass
	// threshold shifts and subthreshold leakage currents (vt.go). The
	// SVT entry is the unshifted reference device of eq. (1-3).
	Vt [NumVtClasses]VtSpec
}

// CMOS025 returns the default 0.25 µm-class corner used by all paper
// experiments. The values are representative of published 0.25 µm data
// (VDD = 2.5 V, FO4 inverter delay around 90-110 ps) and are chosen so
// that path delays land in the same picosecond/nanosecond range as the
// paper's tables.
func CMOS025() *Process {
	return &Process{
		Name: "cmos025",
		Tau:  18.0, // ps
		R:    2.4,
		K:    1.15, // low-power libraries keep P/N near unity

		VTN:            0.20, // 0.50 V / 2.5 V
		VTP:            0.22, // 0.55 V / 2.5 V
		S0:             0.62,
		CgPerMicron:    2.0,  // fF/µm
		CRef:           1.7,  // fF  (min inverter: WN=0.3 µm, WP=0.55 µm)
		CMax:           1700, // fF  (1000× the minimum drive)
		VDD:            2.5,
		Alpha:          1.35,
		KPN:            218.0, // µA/µm at 1 V overdrive (calibrated to eq. 1-3)
		VDSatRatio:     0.45,
		CDiffPerMicron: 1.6, // fF/µm
		Vt:             defaultVt025(),
	}
}

// Validate checks that the corner is physically meaningful. Every
// constructor of downstream packages calls it before use.
func (p *Process) Validate() error {
	if p == nil {
		return errors.New("tech: nil process")
	}
	checks := []struct {
		ok  bool
		msg string
	}{
		{p.Tau > 0, "time unit Tau must be positive"},
		{p.R > 0, "current ratio R must be positive"},
		{p.K > 0, "configuration ratio K must be positive"},
		{p.VTN > 0 && p.VTN < 1, "reduced threshold VTN must lie in (0,1)"},
		{p.VTP > 0 && p.VTP < 1, "reduced threshold VTP must lie in (0,1)"},
		{p.S0 > 0, "symmetry prefactor S0 must be positive"},
		{p.CgPerMicron > 0, "gate capacitance per micron must be positive"},
		{p.CRef > 0, "minimum drive CRef must be positive"},
		{p.CMax > p.CRef, "maximum drive CMax must exceed CRef"},
		{p.VDD > 0, "supply VDD must be positive"},
		{p.Alpha >= 1 && p.Alpha <= 2, "alpha-power index must lie in [1,2]"},
		{p.KPN > 0, "transconductance KPN must be positive"},
		{p.VDSatRatio > 0 && p.VDSatRatio <= 1, "VDSatRatio must lie in (0,1]"},
		{p.CDiffPerMicron >= 0, "diffusion capacitance must be non-negative"},
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("tech: %s (corner %q)", c.msg, p.Name)
		}
	}
	return p.validateVt()
}

// Clone returns an independent copy of the corner, so experiments can
// perturb parameters (ablations) without aliasing the shared default.
func (p *Process) Clone() *Process {
	q := *p
	return &q
}

// MillerHL returns the ratio C_M/C_IN for an input rising edge (output
// falling). Per the paper, C_M is evaluated as one half the input
// capacitance of the P transistor: k/(2(1+k)) of the pin capacitance.
func (p *Process) MillerHL() float64 { return p.K / (2 * (1 + p.K)) }

// MillerLH returns the ratio C_M/C_IN for an input falling edge (output
// rising): one half the input capacitance of the N transistor,
// 1/(2(1+k)) of the pin capacitance.
func (p *Process) MillerLH() float64 { return 1 / (2 * (1 + p.K)) }

// VTMean returns the average reduced threshold, used by the
// edge-averaged path optimization objective.
func (p *Process) VTMean() float64 { return (p.VTN + p.VTP) / 2 }

// WidthForCap converts an input pin capacitance (fF) into the total
// transistor width WN+WP (µm) realizing it.
func (p *Process) WidthForCap(c float64) float64 { return c / p.CgPerMicron }

// CapForWidth converts a total transistor width (µm) into the input pin
// capacitance (fF) it presents.
func (p *Process) CapForWidth(w float64) float64 { return w * p.CgPerMicron }

// WN splits a total width WN+WP into its N component using the
// configuration ratio k.
func (p *Process) WN(total float64) float64 { return total / (1 + p.K) }

// WP splits a total width WN+WP into its P component using the
// configuration ratio k.
func (p *Process) WP(total float64) float64 { return total * p.K / (1 + p.K) }

// ClampCap restricts an input capacitance to the realizable drive range
// [CRef, CMax].
func (p *Process) ClampCap(c float64) float64 {
	if c < p.CRef {
		return p.CRef
	}
	if c > p.CMax {
		return p.CMax
	}
	return c
}

// FO4 returns the canonical fan-out-of-4 inverter delay of the corner in
// ps, a sanity metric used by tests and documentation. It evaluates the
// eq. (1) falling delay of an inverter loaded by four copies of itself,
// driven by an identical stage (so the input slope is self-consistent).
func (p *Process) FO4() float64 {
	// Inverter symmetry factors (logical weight 1 on both edges).
	sHL := p.S0 * (1 + p.K)
	sLH := p.S0 * (1 + p.K) * p.R / p.K
	// Output transition driving F = 4, and the same for the driver.
	tauOutHL := sHL * p.Tau * 4
	tauInLH := sLH * p.Tau * 4
	cm := p.MillerHL()
	// Miller factor with C_L = 4·C_IN: 1 + 2cm/(cm+4).
	m := 1 + 2*cm/(cm+4)
	return p.VTN/2*tauInLH + m/2*tauOutHL
}
