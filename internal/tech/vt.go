package tech

import (
	"fmt"
	"math"
)

// VtClass enumerates the threshold-voltage flavors of a multi-Vt
// process. Selective multi-threshold design (Kitahara et al.) fabricates
// the same cell footprint at several channel implants: a low-Vt device
// is fast but leaky, a high-Vt device trades speed for an order of
// magnitude less subthreshold leakage. The zero value is SVT — the
// standard device every circuit starts from — so existing netlists and
// all pre-multi-Vt results are unchanged by construction.
type VtClass int

// The three Vt classes of the default corner. Promotion order (toward
// lower leakage) is LVT → SVT → HVT.
const (
	// SVT is the standard-threshold device: the library default and the
	// device eq. (1-3) were calibrated on. Zero value.
	SVT VtClass = iota
	// LVT is the low-threshold device: higher drive, ~10× the SVT
	// subthreshold leakage.
	LVT
	// HVT is the high-threshold device: lower drive, ~10× less
	// subthreshold leakage than SVT.
	HVT
	// NumVtClasses sizes per-class arrays.
	NumVtClasses = iota
)

// String names the class in lower case ("svt", "lvt", "hvt").
func (v VtClass) String() string {
	switch v {
	case SVT:
		return "svt"
	case LVT:
		return "lvt"
	case HVT:
		return "hvt"
	}
	return fmt.Sprintf("VtClass(%d)", int(v))
}

// Valid reports whether v is one of the defined classes.
func (v VtClass) Valid() bool { return v >= 0 && v < NumVtClasses }

// Rank orders the classes by threshold: LVT (0) < SVT (1) < HVT (2).
// Higher rank means higher threshold — slower and less leaky.
func (v VtClass) Rank() int {
	switch v {
	case LVT:
		return 0
	case SVT:
		return 1
	case HVT:
		return 2
	}
	return -1
}

// Promote returns the next class up the threshold ladder (toward lower
// leakage): LVT → SVT → HVT. ok is false at the top.
func (v VtClass) Promote() (VtClass, bool) {
	switch v {
	case LVT:
		return SVT, true
	case SVT:
		return HVT, true
	}
	return v, false
}

// VtClasses returns all classes in threshold order (LVT, SVT, HVT).
func VtClasses() []VtClass { return []VtClass{LVT, SVT, HVT} }

// VtSpec characterizes one threshold class of the process.
type VtSpec struct {
	// DeltaVT is the reduced-threshold shift ΔVT/VDD applied to both
	// device polarities relative to the SVT device of eq. (1):
	// negative for LVT (faster), zero for SVT, positive for HVT.
	DeltaVT float64

	// ILeakN and ILeakP are the subthreshold leakage currents per
	// micron of N/P transistor width (nA/µm) with the device off at
	// nominal VDD — the per-cell leakage characterization a low-power
	// library carries (Kaur & Noor).
	ILeakN float64
	ILeakP float64
}

// VtSpec returns the spec of a class. It panics on invalid classes;
// callers validate with VtClass.Valid first.
func (p *Process) VtSpec(v VtClass) VtSpec { return p.Vt[v] }

// VtShiftN returns the effective reduced N threshold of a class:
// VTN + ΔVT. For SVT this is exactly VTN.
func (p *Process) VtShiftN(v VtClass) float64 { return p.VTN + p.Vt[v].DeltaVT }

// VtShiftP returns the effective reduced P threshold of a class.
func (p *Process) VtShiftP(v VtClass) float64 { return p.VTP + p.Vt[v].DeltaVT }

// VtDriveN returns the pull-down drive of a class relative to the SVT
// device, per the alpha-power law: ((1−VTN−Δ)/(1−VTN))^α. Greater than
// one for LVT, exactly one for SVT, below one for HVT. Output falling
// transitions scale by its inverse.
func (p *Process) VtDriveN(v VtClass) float64 {
	d := p.Vt[v].DeltaVT
	if d == 0 {
		return 1
	}
	return math.Pow((1-p.VTN-d)/(1-p.VTN), p.Alpha)
}

// VtDriveP returns the pull-up drive of a class relative to SVT.
func (p *Process) VtDriveP(v VtClass) float64 {
	d := p.Vt[v].DeltaVT
	if d == 0 {
		return 1
	}
	return math.Pow((1-p.VTP-d)/(1-p.VTP), p.Alpha)
}

// defaultVt025 returns the multi-Vt extension of the 0.25 µm-class
// corner. Shifts of ∓0.15 V (±0.06 reduced at VDD = 2.5 V) move the
// subthreshold leakage by roughly an order of magnitude per class at a
// ~90 mV/decade swing; the absolute SVT currents are representative of
// published 0.25 µm data at room temperature.
func defaultVt025() [NumVtClasses]VtSpec {
	var vt [NumVtClasses]VtSpec
	vt[SVT] = VtSpec{DeltaVT: 0, ILeakN: 2.5, ILeakP: 1.2}
	vt[LVT] = VtSpec{DeltaVT: -0.06, ILeakN: 24.0, ILeakP: 11.5}
	vt[HVT] = VtSpec{DeltaVT: +0.06, ILeakN: 0.26, ILeakP: 0.13}
	return vt
}

// validateVt checks the multi-Vt table of a corner: the SVT entry is
// the unshifted reference, shifted thresholds stay physical, and
// leakage decreases strictly with threshold rank.
func (p *Process) validateVt() error {
	if p.Vt[SVT].DeltaVT != 0 {
		return fmt.Errorf("tech: SVT threshold shift must be zero (corner %q)", p.Name)
	}
	for _, v := range VtClasses() {
		s := p.Vt[v]
		if n := p.VTN + s.DeltaVT; n <= 0 || n >= 1 {
			return fmt.Errorf("tech: %v shifts reduced VTN to %.3f outside (0,1) (corner %q)", v, n, p.Name)
		}
		if t := p.VTP + s.DeltaVT; t <= 0 || t >= 1 {
			return fmt.Errorf("tech: %v shifts reduced VTP to %.3f outside (0,1) (corner %q)", v, t, p.Name)
		}
		if s.ILeakN < 0 || s.ILeakP < 0 {
			return fmt.Errorf("tech: %v has negative leakage current (corner %q)", v, p.Name)
		}
	}
	order := VtClasses()
	for i := 1; i < len(order); i++ {
		lo, hi := p.Vt[order[i-1]], p.Vt[order[i]]
		if hi.DeltaVT <= lo.DeltaVT {
			return fmt.Errorf("tech: Vt shifts must increase with rank (%v vs %v, corner %q)",
				order[i-1], order[i], p.Name)
		}
		if hi.ILeakN >= lo.ILeakN || hi.ILeakP >= lo.ILeakP {
			return fmt.Errorf("tech: leakage must decrease with threshold rank (%v vs %v, corner %q)",
				order[i-1], order[i], p.Name)
		}
	}
	return nil
}
