package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCMOS025Valid(t *testing.T) {
	if err := CMOS025().Validate(); err != nil {
		t.Fatalf("default corner invalid: %v", err)
	}
}

func TestValidateNil(t *testing.T) {
	var p *Process
	if err := p.Validate(); err == nil {
		t.Fatal("nil process must not validate")
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Process)
	}{
		{"zero tau", func(p *Process) { p.Tau = 0 }},
		{"negative tau", func(p *Process) { p.Tau = -1 }},
		{"zero R", func(p *Process) { p.R = 0 }},
		{"zero K", func(p *Process) { p.K = 0 }},
		{"vtn zero", func(p *Process) { p.VTN = 0 }},
		{"vtn one", func(p *Process) { p.VTN = 1 }},
		{"vtp negative", func(p *Process) { p.VTP = -0.2 }},
		{"s0 zero", func(p *Process) { p.S0 = 0 }},
		{"cg zero", func(p *Process) { p.CgPerMicron = 0 }},
		{"cref zero", func(p *Process) { p.CRef = 0 }},
		{"cmax below cref", func(p *Process) { p.CMax = p.CRef / 2 }},
		{"vdd zero", func(p *Process) { p.VDD = 0 }},
		{"alpha below 1", func(p *Process) { p.Alpha = 0.9 }},
		{"alpha above 2", func(p *Process) { p.Alpha = 2.1 }},
		{"kpn zero", func(p *Process) { p.KPN = 0 }},
		{"vdsat zero", func(p *Process) { p.VDSatRatio = 0 }},
		{"vdsat above 1", func(p *Process) { p.VDSatRatio = 1.2 }},
		{"cdiff negative", func(p *Process) { p.CDiffPerMicron = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := CMOS025()
			tc.mutate(p)
			if err := p.Validate(); err == nil {
				t.Fatalf("%s: expected validation error", tc.name)
			}
		})
	}
}

func TestCloneIndependence(t *testing.T) {
	p := CMOS025()
	q := p.Clone()
	q.Tau = 99
	if p.Tau == 99 {
		t.Fatal("Clone aliases the original")
	}
	if q.Name != p.Name {
		t.Fatal("Clone must copy fields")
	}
}

func TestMillerRatios(t *testing.T) {
	p := CMOS025()
	hl := p.MillerHL()
	lh := p.MillerLH()
	if hl <= 0 || lh <= 0 {
		t.Fatalf("Miller ratios must be positive: %g %g", hl, lh)
	}
	// The two shares add to half the pin capacitance.
	if got := hl + lh; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MillerHL+MillerLH = %g, want 0.5", got)
	}
	// P share exceeds N share iff k > 1.
	if p.K > 1 && hl <= lh {
		t.Fatalf("with k=%g>1 the P share must dominate: %g vs %g", p.K, hl, lh)
	}
}

func TestVTMean(t *testing.T) {
	p := CMOS025()
	want := (p.VTN + p.VTP) / 2
	if got := p.VTMean(); got != want {
		t.Fatalf("VTMean=%g want %g", got, want)
	}
}

func TestWidthCapRoundTrip(t *testing.T) {
	p := CMOS025()
	f := func(w float64) bool {
		w = 0.1 + math.Abs(w)
		if math.IsInf(w, 0) || math.IsNaN(w) || w > 1e6 {
			return true
		}
		back := p.WidthForCap(p.CapForWidth(w))
		return math.Abs(back-w) < 1e-9*w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWidthSplit(t *testing.T) {
	p := CMOS025()
	total := 4.3
	wn, wp := p.WN(total), p.WP(total)
	if math.Abs(wn+wp-total) > 1e-12 {
		t.Fatalf("WN+WP=%g want %g", wn+wp, total)
	}
	if math.Abs(wp/wn-p.K) > 1e-9 {
		t.Fatalf("WP/WN=%g want k=%g", wp/wn, p.K)
	}
}

func TestClampCap(t *testing.T) {
	p := CMOS025()
	if got := p.ClampCap(p.CRef / 10); got != p.CRef {
		t.Fatalf("clamp low: got %g want %g", got, p.CRef)
	}
	if got := p.ClampCap(p.CMax * 10); got != p.CMax {
		t.Fatalf("clamp high: got %g want %g", got, p.CMax)
	}
	mid := (p.CRef + p.CMax) / 2
	if got := p.ClampCap(mid); got != mid {
		t.Fatalf("clamp interior: got %g want %g", got, mid)
	}
}

func TestFO4Range(t *testing.T) {
	// A 0.25 µm-class process has an FO4 inverter delay of very
	// roughly 60-150 ps; wildly different values mean the calibration
	// broke.
	fo4 := CMOS025().FO4()
	if fo4 < 40 || fo4 > 200 {
		t.Fatalf("FO4 = %.1f ps, outside the plausible 0.25 µm window", fo4)
	}
}

func TestFO4ScalesWithTau(t *testing.T) {
	p := CMOS025()
	q := p.Clone()
	q.Tau *= 2
	if got, want := q.FO4(), 2*p.FO4(); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("FO4 must scale linearly with tau: %g vs %g", got, want)
	}
}
