// Package gate defines the combinational cell library used by the POPS
// reproduction: the primitive CMOS gates (inverter, NAND, NOR families
// plus a non-inverting buffer), their logical weights DW, symmetry
// factors S (eq. 3 of the paper), parasitic coefficients, and De Morgan
// duals used by the logic-restructuring step of §4.2.
//
// The paper's delay model characterizes each gate type by its logical
// weight DW(HL/LH) — "the ratio of the current available in an inverter
// to that of a serial array of transistors". A NAND stacks its N
// devices (DW_HL ≈ fan-in) while its P devices switch in parallel
// (DW_LH ≈ 1); a NOR is the mirror image, and pays the weak-P penalty
// R/k on top, which is precisely why the paper singles NOR3 out as the
// least efficient cell (lowest buffer-insertion limit in Table 2).
package gate

import (
	"fmt"

	"repro/internal/tech"
)

// Type enumerates the library cells.
type Type int

// Library cell types. INPUT and OUTPUT are pseudo-cells used by netlists
// for primary inputs/outputs; they carry no delay of their own.
const (
	Invalid Type = iota
	Input        // primary input pseudo-cell
	Output       // primary output pseudo-cell
	Inv
	Buf
	Nand2
	Nand3
	Nand4
	Nor2
	Nor3
	Nor4
	And2
	And3
	And4
	Or2
	Or3
	Or4
	Xor2
	Xnor2
	numTypes
)

var typeNames = map[Type]string{
	Invalid: "INVALID",
	Input:   "INPUT",
	Output:  "OUTPUT",
	Inv:     "INV",
	Buf:     "BUF",
	Nand2:   "NAND2",
	Nand3:   "NAND3",
	Nand4:   "NAND4",
	Nor2:    "NOR2",
	Nor3:    "NOR3",
	Nor4:    "NOR4",
	And2:    "AND2",
	And3:    "AND3",
	And4:    "AND4",
	Or2:     "OR2",
	Or3:     "OR3",
	Or4:     "OR4",
	Xor2:    "XOR2",
	Xnor2:   "XNOR2",
}

// String returns the canonical upper-case cell name.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// ParseType resolves a cell name (case-insensitive; ISCAS .bench
// operator names such as "NOT" and "BUFF" are accepted) to a Type.
func ParseType(name string) (Type, error) {
	switch upper(name) {
	case "INV", "NOT":
		return Inv, nil
	case "BUF", "BUFF":
		return Buf, nil
	case "NAND", "NAND2":
		return Nand2, nil
	case "NAND3":
		return Nand3, nil
	case "NAND4":
		return Nand4, nil
	case "NOR", "NOR2":
		return Nor2, nil
	case "NOR3":
		return Nor3, nil
	case "NOR4":
		return Nor4, nil
	case "AND", "AND2":
		return And2, nil
	case "AND3":
		return And3, nil
	case "AND4":
		return And4, nil
	case "OR", "OR2":
		return Or2, nil
	case "OR3":
		return Or3, nil
	case "OR4":
		return Or4, nil
	case "XOR", "XOR2":
		return Xor2, nil
	case "XNOR", "XNOR2":
		return Xnor2, nil
	case "INPUT":
		return Input, nil
	case "OUTPUT":
		return Output, nil
	}
	return Invalid, fmt.Errorf("gate: unknown cell type %q", name)
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// Cell describes the electrical personality of a library cell.
type Cell struct {
	Type   Type
	FanIn  int // number of input pins
	Invert bool

	// DWHL and DWLH are the logical weights of the falling and rising
	// output edges (eq. 3): the factor by which the switching current
	// is degraded relative to the reference inverter.
	DWHL float64
	DWLH float64

	// ParasiticFactor scales the gate's self-loading: the output
	// diffusion capacitance is ParasiticFactor × the per-pin input
	// capacitance. It grows with transistor count (the classic
	// logical-effort parasitic delay).
	ParasiticFactor float64

	// StackN and StackP are the series transistor counts of the
	// pull-down and pull-up networks (transistor-level simulator).
	StackN int
	StackP int
}

// Logical weights are calibrated, not the naive series-stack count:
// body effect and the non-switching stack transistors being fully on
// reduce the current degradation below n (cf. Maurine et al., TCAD
// 2002). The values below reproduce the Flimit ordering and magnitudes
// of the paper's Table 2 on the default 0.25 µm corner.
var cells = map[Type]Cell{
	Inv:   {Type: Inv, FanIn: 1, Invert: true, DWHL: 1.0, DWLH: 1.0, ParasiticFactor: 1.0, StackN: 1, StackP: 1},
	Buf:   {Type: Buf, FanIn: 1, Invert: false, DWHL: 1.0, DWLH: 1.0, ParasiticFactor: 1.9, StackN: 1, StackP: 1},
	Nand2: {Type: Nand2, FanIn: 2, Invert: true, DWHL: 1.60, DWLH: 1.10, ParasiticFactor: 1.5, StackN: 2, StackP: 1},
	Nand3: {Type: Nand3, FanIn: 3, Invert: true, DWHL: 2.20, DWLH: 1.20, ParasiticFactor: 2.1, StackN: 3, StackP: 1},
	Nand4: {Type: Nand4, FanIn: 4, Invert: true, DWHL: 2.80, DWLH: 1.30, ParasiticFactor: 2.8, StackN: 4, StackP: 1},
	Nor2:  {Type: Nor2, FanIn: 2, Invert: true, DWHL: 1.10, DWLH: 1.80, ParasiticFactor: 1.6, StackN: 1, StackP: 2},
	Nor3:  {Type: Nor3, FanIn: 3, Invert: true, DWHL: 1.15, DWLH: 2.60, ParasiticFactor: 2.3, StackN: 1, StackP: 3},
	Nor4:  {Type: Nor4, FanIn: 4, Invert: true, DWHL: 1.20, DWLH: 3.40, ParasiticFactor: 3.1, StackN: 1, StackP: 4},
}

// composite cells (AND/OR/XOR/XNOR) are macros over the primitives; they
// are expanded by netlist elaboration and never reach the delay model,
// but Lookup still returns a personality for them (their primitive
// front stage) so partially elaborated netlists remain analyzable.
var composites = map[Type]Cell{
	And2:  {Type: And2, FanIn: 2, Invert: false, DWHL: 1.60, DWLH: 1.10, ParasiticFactor: 2.5, StackN: 2, StackP: 1},
	And3:  {Type: And3, FanIn: 3, Invert: false, DWHL: 2.20, DWLH: 1.20, ParasiticFactor: 3.1, StackN: 3, StackP: 1},
	And4:  {Type: And4, FanIn: 4, Invert: false, DWHL: 2.80, DWLH: 1.30, ParasiticFactor: 3.8, StackN: 4, StackP: 1},
	Or2:   {Type: Or2, FanIn: 2, Invert: false, DWHL: 1.10, DWLH: 1.80, ParasiticFactor: 2.6, StackN: 1, StackP: 2},
	Or3:   {Type: Or3, FanIn: 3, Invert: false, DWHL: 1.15, DWLH: 2.60, ParasiticFactor: 3.3, StackN: 1, StackP: 3},
	Or4:   {Type: Or4, FanIn: 4, Invert: false, DWHL: 1.20, DWLH: 3.40, ParasiticFactor: 4.1, StackN: 1, StackP: 4},
	Xor2:  {Type: Xor2, FanIn: 2, Invert: false, DWHL: 1.90, DWLH: 1.90, ParasiticFactor: 3.6, StackN: 2, StackP: 2},
	Xnor2: {Type: Xnor2, FanIn: 2, Invert: true, DWHL: 1.90, DWLH: 1.90, ParasiticFactor: 3.6, StackN: 2, StackP: 2},
}

// Lookup returns the cell personality for a type. It returns an error
// for pseudo-cells (Input/Output) and unknown types.
func Lookup(t Type) (Cell, error) {
	if c, ok := cells[t]; ok {
		return c, nil
	}
	if c, ok := composites[t]; ok {
		return c, nil
	}
	return Cell{}, fmt.Errorf("gate: type %v has no cell personality", t)
}

// MustLookup is Lookup for callers that have already validated the type.
// It panics on unknown types.
func MustLookup(t Type) Cell {
	c, err := Lookup(t)
	if err != nil {
		panic(err)
	}
	return c
}

// Primitives returns the primitive (directly characterized) cell types
// in a stable order.
func Primitives() []Type {
	return []Type{Inv, Buf, Nand2, Nand3, Nand4, Nor2, Nor3, Nor4}
}

// Composites returns the macro cell types expanded during elaboration.
func Composites() []Type {
	return []Type{And2, And3, And4, Or2, Or3, Or4, Xor2, Xnor2}
}

// IsPrimitive reports whether t is directly characterized (reaches the
// delay model without macro expansion).
func IsPrimitive(t Type) bool {
	_, ok := cells[t]
	return ok
}

// IsLogic reports whether t is a logic cell (primitive or composite),
// as opposed to an Input/Output pseudo-cell.
func IsLogic(t Type) bool {
	return IsPrimitive(t) || isComposite(t)
}

func isComposite(t Type) bool {
	_, ok := composites[t]
	return ok
}

// SHL returns the eq. (3) symmetry factor of the falling output edge for
// cell c under process p: S_HL = S0·(1+k)·DW_HL.
func (c Cell) SHL(p *tech.Process) float64 {
	return p.S0 * (1 + p.K) * c.DWHL
}

// SLH returns the eq. (3) symmetry factor of the rising output edge:
// S_LH = S0·(1+k)·(R/k)·DW_LH. The R/k factor is the weak-P penalty.
func (c Cell) SLH(p *tech.Process) float64 {
	return p.S0 * (1 + p.K) * p.R / p.K * c.DWLH
}

// SMean returns the edge-averaged symmetry factor used by the convex
// path-optimization objective.
func (c Cell) SMean(p *tech.Process) float64 {
	return (c.SHL(p) + c.SLH(p)) / 2
}

// Parasitic returns the output self-loading capacitance (fF) of the
// cell when its per-pin input capacitance is cin.
func (c Cell) Parasitic(cin float64) float64 {
	return c.ParasiticFactor * cin
}

// Area returns the total transistor width ΣW (µm) of the cell when its
// per-pin input capacitance is cin: every pin contributes its gate
// width. This is the cost metric of the paper's figures (ΣW in µm).
func (c Cell) Area(cin float64, p *tech.Process) float64 {
	return float64(c.FanIn) * p.WidthForCap(cin)
}

// DeMorganDual returns the cell type realizing the same boolean
// function as t when all of t's inputs and its output are inverted
// (De Morgan's theorem), together with ok=false when t has no dual in
// the library. NAND(a,b) = NOT(a AND b) = (NOT a) OR (NOT b): inverting
// the inputs of an OR-typed cell. Concretely the restructuring step of
// §4.2 uses: NOR_n ↔ NAND_n with inverters moved across the cell.
func DeMorganDual(t Type) (Type, bool) {
	switch t {
	case Nand2:
		return Nor2, true
	case Nand3:
		return Nor3, true
	case Nand4:
		return Nor4, true
	case Nor2:
		return Nand2, true
	case Nor3:
		return Nand3, true
	case Nor4:
		return Nand4, true
	case And2:
		return Or2, true
	case And3:
		return Or3, true
	case And4:
		return Or4, true
	case Or2:
		return And2, true
	case Or3:
		return And3, true
	case Or4:
		return And4, true
	default:
		return Invalid, false
	}
}

// Eval evaluates the boolean function of cell type t on the given
// inputs. It panics if the input count does not match the cell fan-in
// (netlist validation guarantees it never does on elaborated circuits).
func Eval(t Type, in []bool) bool {
	switch t {
	case Inv:
		mustLen(t, in, 1)
		return !in[0]
	case Buf, Output:
		mustLen(t, in, 1)
		return in[0]
	case Nand2, Nand3, Nand4:
		return !allTrue(in)
	case And2, And3, And4:
		return allTrue(in)
	case Nor2, Nor3, Nor4:
		return !anyTrue(in)
	case Or2, Or3, Or4:
		return anyTrue(in)
	case Xor2:
		mustLen(t, in, 2)
		return in[0] != in[1]
	case Xnor2:
		mustLen(t, in, 2)
		return in[0] == in[1]
	}
	panic(fmt.Sprintf("gate: Eval on non-logic type %v", t))
}

func mustLen(t Type, in []bool, n int) {
	if len(in) != n {
		panic(fmt.Sprintf("gate: %v expects %d inputs, got %d", t, n, len(in)))
	}
}

// EvalWord is Eval on 64 packed evaluations at once: bit j of every
// input word is the value of input pin i in evaluation j, and bit j of
// the returned word is the cell's output for that evaluation. All
// library functions are bitwise (AND/OR/XOR trees plus inversion), so
// one machine word evaluates 64 random vectors of the power
// simulation for the cost of one — the word-parallel fast path behind
// power.SimulateProfile. It panics on non-logic types and wrong input
// counts, mirroring Eval.
func EvalWord(t Type, in []uint64) uint64 {
	switch t {
	case Inv:
		mustLenWord(t, in, 1)
		return ^in[0]
	case Buf, Output:
		mustLenWord(t, in, 1)
		return in[0]
	case Nand2, Nand3, Nand4:
		return ^allOnes(in)
	case And2, And3, And4:
		return allOnes(in)
	case Nor2, Nor3, Nor4:
		return ^anyOnes(in)
	case Or2, Or3, Or4:
		return anyOnes(in)
	case Xor2:
		mustLenWord(t, in, 2)
		return in[0] ^ in[1]
	case Xnor2:
		mustLenWord(t, in, 2)
		return ^(in[0] ^ in[1])
	}
	panic(fmt.Sprintf("gate: EvalWord on non-logic type %v", t))
}

func mustLenWord(t Type, in []uint64, n int) {
	if len(in) != n {
		panic(fmt.Sprintf("gate: %v expects %d inputs, got %d", t, n, len(in)))
	}
}

func allOnes(in []uint64) uint64 {
	w := ^uint64(0)
	for _, v := range in {
		w &= v
	}
	return w
}

func anyOnes(in []uint64) uint64 {
	var w uint64
	for _, v := range in {
		w |= v
	}
	return w
}

func allTrue(in []bool) bool {
	for _, v := range in {
		if !v {
			return false
		}
	}
	return true
}

func anyTrue(in []bool) bool {
	for _, v := range in {
		if v {
			return true
		}
	}
	return false
}

// VariantWithFanIn returns the cell of the same family as t with the
// requested fan-in (e.g. Nand-family, 3 → Nand3). ok=false when the
// family has no such member.
func VariantWithFanIn(t Type, n int) (Type, bool) {
	family := map[Type][]Type{
		Nand2: {Invalid, Inv, Nand2, Nand3, Nand4},
		Nor2:  {Invalid, Inv, Nor2, Nor3, Nor4},
		And2:  {Invalid, Buf, And2, And3, And4},
		Or2:   {Invalid, Buf, Or2, Or3, Or4},
	}
	var fam []Type
	switch t {
	case Nand2, Nand3, Nand4:
		fam = family[Nand2]
	case Nor2, Nor3, Nor4:
		fam = family[Nor2]
	case And2, And3, And4:
		fam = family[And2]
	case Or2, Or3, Or4:
		fam = family[Or2]
	default:
		return Invalid, false
	}
	if n < 1 || n >= len(fam) || fam[n] == Invalid {
		return Invalid, false
	}
	return fam[n], true
}
