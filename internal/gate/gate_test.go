package gate

import (
	"math"
	"strings"
	"testing"

	"repro/internal/tech"
)

func TestParseTypeAliases(t *testing.T) {
	cases := map[string]Type{
		"INV": Inv, "NOT": Inv, "not": Inv,
		"BUF": Buf, "BUFF": Buf, "buff": Buf,
		"NAND": Nand2, "NAND2": Nand2, "NAND3": Nand3, "NAND4": Nand4,
		"NOR": Nor2, "NOR2": Nor2, "NOR3": Nor3, "NOR4": Nor4,
		"AND": And2, "AND3": And3, "AND4": And4,
		"OR": Or2, "OR3": Or3, "OR4": Or4,
		"XOR": Xor2, "XNOR": Xnor2,
		"INPUT": Input, "OUTPUT": Output,
	}
	for s, want := range cases {
		got, err := ParseType(s)
		if err != nil || got != want {
			t.Fatalf("ParseType(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
}

func TestParseTypeUnknown(t *testing.T) {
	for _, s := range []string{"", "FOO", "NAND5", "XOR3"} {
		if _, err := ParseType(s); err == nil {
			t.Fatalf("ParseType(%q) must fail", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, ty := range append(Primitives(), Composites()...) {
		back, err := ParseType(ty.String())
		if err != nil || back != ty {
			t.Fatalf("round trip %v → %q → %v, %v", ty, ty.String(), back, err)
		}
	}
	if !strings.Contains(Type(99).String(), "99") {
		t.Fatal("unknown type String must include the numeric value")
	}
}

func TestLookupCoverage(t *testing.T) {
	for _, ty := range append(Primitives(), Composites()...) {
		c, err := Lookup(ty)
		if err != nil {
			t.Fatalf("Lookup(%v): %v", ty, err)
		}
		if c.Type != ty {
			t.Fatalf("Lookup(%v) returned cell of type %v", ty, c.Type)
		}
		if c.FanIn < 1 || c.FanIn > 4 {
			t.Fatalf("%v has silly fan-in %d", ty, c.FanIn)
		}
		if c.DWHL < 1 || c.DWLH < 1 {
			t.Fatalf("%v has logical weight below 1: %g/%g", ty, c.DWHL, c.DWLH)
		}
		if c.ParasiticFactor <= 0 {
			t.Fatalf("%v has non-positive parasitic", ty)
		}
	}
	for _, ty := range []Type{Input, Output, Invalid} {
		if _, err := Lookup(ty); err == nil {
			t.Fatalf("Lookup(%v) must fail", ty)
		}
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup(Input) must panic")
		}
	}()
	MustLookup(Input)
}

func TestIsPrimitiveIsLogic(t *testing.T) {
	if !IsPrimitive(Nand3) || IsPrimitive(And2) || IsPrimitive(Input) {
		t.Fatal("IsPrimitive misclassifies")
	}
	if !IsLogic(And2) || !IsLogic(Inv) || IsLogic(Input) || IsLogic(Output) {
		t.Fatal("IsLogic misclassifies")
	}
}

func TestSymmetryFactorOrdering(t *testing.T) {
	p := tech.CMOS025()
	inv := MustLookup(Inv)
	// The rising edge pays the weak-P penalty R/k.
	if inv.SLH(p) <= inv.SHL(p) {
		t.Fatalf("inverter SLH (%g) must exceed SHL (%g) for R>k", inv.SLH(p), inv.SHL(p))
	}
	// NAND stacks degrade the falling edge, NOR the rising edge.
	nand3 := MustLookup(Nand3)
	nor3 := MustLookup(Nor3)
	if nand3.SHL(p) <= inv.SHL(p) {
		t.Fatal("NAND3 falling edge must be slower than the inverter's")
	}
	if nor3.SLH(p) <= inv.SLH(p) {
		t.Fatal("NOR3 rising edge must be slower than the inverter's")
	}
	// NOR3 is the least efficient cell overall (paper Table 2).
	for _, ty := range []Type{Inv, Nand2, Nand3, Nor2} {
		if MustLookup(ty).SMean(p) >= nor3.SMean(p) {
			t.Fatalf("%v must be more efficient than NOR3", ty)
		}
	}
}

func TestSMeanIsAverage(t *testing.T) {
	p := tech.CMOS025()
	for _, ty := range Primitives() {
		c := MustLookup(ty)
		want := (c.SHL(p) + c.SLH(p)) / 2
		if math.Abs(c.SMean(p)-want) > 1e-12 {
			t.Fatalf("%v SMean mismatch", ty)
		}
	}
}

func TestParasiticAndArea(t *testing.T) {
	p := tech.CMOS025()
	c := MustLookup(Nand2)
	if got, want := c.Parasitic(3), 3*c.ParasiticFactor; got != want {
		t.Fatalf("Parasitic = %g want %g", got, want)
	}
	// Two pins at 4 fF = 2 × 4/Cg µm.
	if got, want := c.Area(4, p), 2*4/p.CgPerMicron; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Area = %g want %g", got, want)
	}
}

func TestDeMorganDualInvolution(t *testing.T) {
	duals := []Type{Nand2, Nand3, Nand4, Nor2, Nor3, Nor4, And2, And3, And4, Or2, Or3, Or4}
	for _, ty := range duals {
		d, ok := DeMorganDual(ty)
		if !ok {
			t.Fatalf("no dual for %v", ty)
		}
		back, ok := DeMorganDual(d)
		if !ok || back != ty {
			t.Fatalf("dual of dual of %v is %v", ty, back)
		}
		// Fan-in preserved.
		if MustLookup(d).FanIn != MustLookup(ty).FanIn {
			t.Fatalf("dual changes fan-in for %v", ty)
		}
	}
	for _, ty := range []Type{Inv, Buf, Xor2, Xnor2, Input} {
		if _, ok := DeMorganDual(ty); ok {
			t.Fatalf("%v must have no dual", ty)
		}
	}
}

func TestDeMorganDualSemantics(t *testing.T) {
	// dual(t)(¬a, ¬b, …) == ¬t(a, b, …) for every dual pair and every
	// input assignment.
	duals := []Type{Nand2, Nand3, Nand4, Nor2, Nor3, Nor4, And2, And3, And4, Or2, Or3, Or4}
	for _, ty := range duals {
		d, _ := DeMorganDual(ty)
		n := MustLookup(ty).FanIn
		for mask := 0; mask < 1<<uint(n); mask++ {
			in := make([]bool, n)
			neg := make([]bool, n)
			for i := 0; i < n; i++ {
				in[i] = mask&(1<<uint(i)) != 0
				neg[i] = !in[i]
			}
			if Eval(d, neg) != !Eval(ty, in) {
				t.Fatalf("De Morgan violated for %v/%v at mask %b", ty, d, mask)
			}
		}
	}
}

func TestEvalTruthTables(t *testing.T) {
	check := func(ty Type, want func(in []bool) bool) {
		n := MustLookup(ty).FanIn
		for mask := 0; mask < 1<<uint(n); mask++ {
			in := make([]bool, n)
			for i := 0; i < n; i++ {
				in[i] = mask&(1<<uint(i)) != 0
			}
			if got := Eval(ty, in); got != want(in) {
				t.Fatalf("%v(%v) = %v", ty, in, got)
			}
		}
	}
	all := func(in []bool) bool {
		for _, v := range in {
			if !v {
				return false
			}
		}
		return true
	}
	any := func(in []bool) bool {
		for _, v := range in {
			if v {
				return true
			}
		}
		return false
	}
	check(Inv, func(in []bool) bool { return !in[0] })
	check(Buf, func(in []bool) bool { return in[0] })
	for _, ty := range []Type{Nand2, Nand3, Nand4} {
		check(ty, func(in []bool) bool { return !all(in) })
	}
	for _, ty := range []Type{And2, And3, And4} {
		check(ty, all)
	}
	for _, ty := range []Type{Nor2, Nor3, Nor4} {
		check(ty, func(in []bool) bool { return !any(in) })
	}
	for _, ty := range []Type{Or2, Or3, Or4} {
		check(ty, any)
	}
	check(Xor2, func(in []bool) bool { return in[0] != in[1] })
	check(Xnor2, func(in []bool) bool { return in[0] == in[1] })
}

func TestEvalPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Eval(Inv, 2 inputs) must panic")
		}
	}()
	Eval(Inv, []bool{true, false})
}

func TestVariantWithFanIn(t *testing.T) {
	cases := []struct {
		family Type
		n      int
		want   Type
		ok     bool
	}{
		{Nand2, 2, Nand2, true},
		{Nand3, 4, Nand4, true},
		{Nand2, 1, Inv, true},
		{Nor4, 2, Nor2, true},
		{Nor2, 1, Inv, true},
		{And2, 3, And3, true},
		{And2, 1, Buf, true},
		{Or3, 4, Or4, true},
		{Nand2, 5, Invalid, false},
		{Nand2, 0, Invalid, false},
		{Inv, 1, Invalid, false},
		{Xor2, 2, Invalid, false},
	}
	for _, tc := range cases {
		got, ok := VariantWithFanIn(tc.family, tc.n)
		if ok != tc.ok || got != tc.want {
			t.Fatalf("VariantWithFanIn(%v, %d) = %v, %v; want %v, %v",
				tc.family, tc.n, got, ok, tc.want, tc.ok)
		}
	}
}

func TestPrimitivesStable(t *testing.T) {
	a := Primitives()
	b := Primitives()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatal("Primitives must be non-empty and stable")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Primitives order changed between calls")
		}
	}
}

// TestEvalWordMatchesEval exhausts every logic cell over all input
// combinations at every bit position: lane j carries the combo and
// every other lane its complement, so a result that leaks across
// lanes (or ignores the lane position) cannot pass.
func TestEvalWordMatchesEval(t *testing.T) {
	types := append(Primitives(), Composites()...)
	types = append(types, Output)
	for _, typ := range types {
		fanIn := 1
		if IsLogic(typ) {
			fanIn = MustLookup(typ).FanIn
		}
		scalar := make([]bool, fanIn)
		inverse := make([]bool, fanIn)
		words := make([]uint64, fanIn)
		for combo := 0; combo < 1<<uint(fanIn); combo++ {
			for i := 0; i < fanIn; i++ {
				scalar[i] = (combo>>uint(i))&1 == 1
				inverse[i] = !scalar[i]
			}
			want := Eval(typ, scalar)
			wantInv := Eval(typ, inverse)
			for j := uint(0); j < 64; j++ {
				for i := 0; i < fanIn; i++ {
					if scalar[i] {
						words[i] = 1 << j
					} else {
						words[i] = ^(uint64(1) << j)
					}
				}
				got := EvalWord(typ, words)
				if (got>>j)&1 == 1 != want {
					t.Fatalf("%v combo=%b lane %d: EvalWord %v, Eval %v", typ, combo, j, (got>>j)&1 == 1, want)
				}
				other := (j + 1) % 64
				if (got>>other)&1 == 1 != wantInv {
					t.Fatalf("%v combo=%b complement lane %d: EvalWord %v, Eval %v",
						typ, combo, other, (got>>other)&1 == 1, wantInv)
				}
			}
		}
	}
}

// TestEvalWordMixedLanes packs two different input combinations into
// one word and checks each lane independently — the cross-lane
// isolation the bit-parallel simulator relies on.
func TestEvalWordMixedLanes(t *testing.T) {
	for _, typ := range append(Primitives(), Composites()...) {
		fanIn := MustLookup(typ).FanIn
		total := 1 << uint(fanIn)
		words := make([]uint64, fanIn)
		for lane := 0; lane < 64; lane++ {
			combo := lane % total
			for i := 0; i < fanIn; i++ {
				if (combo>>uint(i))&1 == 1 {
					words[i] |= 1 << uint(lane)
				}
			}
		}
		got := EvalWord(typ, words)
		scalar := make([]bool, fanIn)
		for lane := 0; lane < 64; lane++ {
			combo := lane % total
			for i := 0; i < fanIn; i++ {
				scalar[i] = (combo>>uint(i))&1 == 1
			}
			if want := Eval(typ, scalar); (got>>uint(lane))&1 == 1 != want {
				t.Fatalf("%v lane %d combo %b: EvalWord %v, Eval %v", typ, lane, combo, (got>>uint(lane))&1 == 1, want)
			}
		}
	}
}

func TestEvalWordPanicsOnNonLogic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EvalWord(Input) did not panic")
		}
	}()
	EvalWord(Input, []uint64{0})
}
