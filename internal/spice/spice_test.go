package spice

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/tech"
)

func sim() *Simulator { return New(tech.CMOS025()) }

func chain(p *tech.Process, types []gate.Type, cin, terminal float64) *delay.Path {
	pa := &delay.Path{Name: "chain", TauIn: delay.DefaultTauIn(p)}
	for _, ty := range types {
		pa.Stages = append(pa.Stages, delay.Stage{Cell: gate.MustLookup(ty), CIn: cin, COff: 0})
	}
	for i := 0; i < len(types)-1; i++ {
		pa.Stages[i].COff = cin // extra fan-out per stage
	}
	pa.Stages[len(types)-1].COff = terminal
	return pa
}

func TestDeviceMonotone(t *testing.T) {
	p := tech.CMOS025()
	d := device{w: 1, vt: p.VTN * p.VDD, kp: p.KPN, alpha: p.Alpha, vdsr: p.VDSatRatio}
	// Current increases with gate overdrive.
	i1, _ := d.current(1.0, 2.0)
	i2, _ := d.current(2.0, 2.0)
	if i2 <= i1 {
		t.Fatal("current must increase with VGS")
	}
	// Current is non-decreasing in VDS with positive derivative.
	prev := -1.0
	for vds := 0.05; vds <= 2.5; vds += 0.05 {
		i, di := d.current(2.0, vds)
		if i < prev {
			t.Fatalf("current decreased at vds=%g", vds)
		}
		if di < 0 {
			t.Fatalf("negative conductance at vds=%g", vds)
		}
		prev = i
	}
	// Cut off below threshold.
	if i, _ := d.current(0.3, 1.0); i != 0 {
		t.Fatal("subthreshold current must be zero in this model")
	}
	if i, _ := d.current(2.0, -0.1); i != 0 {
		t.Fatal("negative VDS must clamp to zero")
	}
}

func TestSimulateInverterBasic(t *testing.T) {
	s := sim()
	pa := chain(s.Proc, []gate.Type{gate.Inv}, 4*s.Proc.CRef, 20)
	for _, rising := range []bool{true, false} {
		meas, err := s.SimulatePath(pa, rising)
		if err != nil {
			t.Fatal(err)
		}
		if meas.Delay <= 0 {
			t.Fatalf("non-positive delay %g", meas.Delay)
		}
		if !meas.Settled {
			t.Fatal("inverter did not settle")
		}
		if len(meas.StageT50) != 1 || math.IsNaN(meas.StageT50[0]) {
			t.Fatal("missing stage measurement")
		}
		if meas.StageTau[0] <= 0 {
			t.Fatal("non-positive transition measurement")
		}
	}
}

func TestSimulateChainMonotoneCrossings(t *testing.T) {
	s := sim()
	types := []gate.Type{gate.Inv, gate.Nand2, gate.Nor2, gate.Inv, gate.Nand3}
	pa := chain(s.Proc, types, 4*s.Proc.CRef, 25)
	meas, err := s.SimulatePath(pa, true)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, t50 := range meas.StageT50 {
		if t50 <= prev {
			t.Fatalf("stage %d crossing %g not after %g", i, t50, prev)
		}
		prev = t50
	}
}

func TestSimMatchesModelOnChains(t *testing.T) {
	// The headline validation: the closed-form model and the
	// transistor-level simulation agree within a tight band after
	// calibration (the paper's Fig. 2 methodology).
	s := sim()
	m := delay.NewModel(s.Proc)
	cases := []struct {
		name  string
		types []gate.Type
		cin   float64
	}{
		{"inv3", []gate.Type{gate.Inv, gate.Inv, gate.Inv}, 4 * s.Proc.CRef},
		{"mixed", []gate.Type{gate.Inv, gate.Nand2, gate.Nor2, gate.Inv}, 6 * s.Proc.CRef},
		{"norheavy", []gate.Type{gate.Nor3, gate.Inv, gate.Nor2, gate.Inv}, 5 * s.Proc.CRef},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pa := chain(s.Proc, tc.types, tc.cin, 30)
			want := m.PathDelayMean(pa)
			got, err := s.PathDelayMean(pa)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(got-want) / want; rel > 0.25 {
				t.Fatalf("model %g ps vs sim %g ps: %.0f%% apart", want, got, rel*100)
			}
		})
	}
}

func TestSimDelayIncreasesWithLoad(t *testing.T) {
	s := sim()
	light := chain(s.Proc, []gate.Type{gate.Inv, gate.Inv}, 4*s.Proc.CRef, 10)
	heavy := chain(s.Proc, []gate.Type{gate.Inv, gate.Inv}, 4*s.Proc.CRef, 80)
	dl, err := s.PathDelayMean(light)
	if err != nil {
		t.Fatal(err)
	}
	dh, err := s.PathDelayMean(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if dh <= dl {
		t.Fatalf("heavier load must be slower: %g vs %g", dh, dl)
	}
}

func TestSimDelayDecreasesWithDrive(t *testing.T) {
	s := sim()
	weak := chain(s.Proc, []gate.Type{gate.Inv}, 2*s.Proc.CRef, 60)
	strong := chain(s.Proc, []gate.Type{gate.Inv}, 12*s.Proc.CRef, 60)
	dw, err := s.PathDelayMean(weak)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.PathDelayMean(strong)
	if err != nil {
		t.Fatal(err)
	}
	if ds >= dw {
		t.Fatalf("stronger drive must be faster: %g vs %g", ds, dw)
	}
}

func TestSimBufExpansion(t *testing.T) {
	s := sim()
	pa := chain(s.Proc, []gate.Type{gate.Inv, gate.Buf, gate.Inv}, 4*s.Proc.CRef, 20)
	meas, err := s.SimulatePath(pa, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(meas.StageT50) != 3 {
		t.Fatalf("BUF stage measurements collapsed: %d", len(meas.StageT50))
	}
	// BUF adds real delay.
	noBuf := chain(s.Proc, []gate.Type{gate.Inv, gate.Inv}, 4*s.Proc.CRef, 20)
	mb, err := s.SimulatePath(noBuf, true)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Delay <= mb.Delay {
		t.Fatal("BUF stage appears to be free")
	}
}

func TestSimRejectsComposite(t *testing.T) {
	s := sim()
	pa := &delay.Path{Name: "bad", TauIn: 50, Stages: []delay.Stage{
		{Cell: gate.MustLookup(gate.And2), CIn: 4, COff: 20},
	}}
	if _, err := s.SimulatePath(pa, true); err == nil {
		t.Fatal("composite cell accepted")
	}
}

func TestSimWindowTooSmall(t *testing.T) {
	s := sim()
	s.Window = 3 // ps: nothing can switch this fast
	pa := chain(s.Proc, []gate.Type{gate.Inv, gate.Inv}, 4*s.Proc.CRef, 20)
	if _, err := s.SimulatePath(pa, true); err == nil {
		t.Fatal("truncated window must error")
	}
}

func TestSimWorstAtLeastMean(t *testing.T) {
	s := sim()
	pa := chain(s.Proc, []gate.Type{gate.Nor3, gate.Inv}, 4*s.Proc.CRef, 30)
	mean, err := s.PathDelayMean(pa)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := s.PathDelayWorst(pa)
	if err != nil {
		t.Fatal(err)
	}
	if worst < mean {
		t.Fatalf("worst %g below mean %g", worst, mean)
	}
}

func TestMeanDelayFnInfOnFailure(t *testing.T) {
	s := sim()
	s.Window = 3
	fn := s.MeanDelayFn()
	pa := chain(s.Proc, []gate.Type{gate.Inv}, 4*s.Proc.CRef, 20)
	if !math.IsInf(fn(pa), 1) {
		t.Fatal("failure must surface as +Inf")
	}
}

func TestSimDtDefaulting(t *testing.T) {
	s := sim()
	s.DT = 0
	pa := chain(s.Proc, []gate.Type{gate.Inv}, 4*s.Proc.CRef, 10)
	if _, err := s.SimulatePath(pa, true); err != nil {
		t.Fatalf("zero DT must default: %v", err)
	}
}
