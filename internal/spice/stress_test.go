package spice

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/tech"
)

// Failure-injection and stress tests: the backward-Euler integrator
// claims unconditional stability — prove it at the extremes the
// optimizers can produce.

func TestSimStableAtMaximumDrive(t *testing.T) {
	// A maximum-size gate discharging a tiny load has a sub-fs
	// time constant; an explicit integrator would explode.
	s := sim()
	p := s.Proc
	pa := &delay.Path{
		Name:  "maxdrive",
		TauIn: delay.DefaultTauIn(p),
		Stages: []delay.Stage{
			{Cell: gate.MustLookup(gate.Inv), CIn: p.CMax, COff: 2},
		},
	}
	meas, err := s.SimulatePath(pa, true)
	if err != nil {
		t.Fatal(err)
	}
	if !meas.Settled {
		t.Fatal("maximum-drive stage did not settle")
	}
	if meas.Delay <= 0 || math.IsNaN(meas.Delay) || math.IsInf(meas.Delay, 0) {
		t.Fatalf("unstable delay %g", meas.Delay)
	}
}

func TestSimStableAtExtremeMismatch(t *testing.T) {
	// Tiny gate driving a thousand-fold load: very slow node next to
	// a very fast one.
	s := sim()
	p := s.Proc
	pa := &delay.Path{
		Name:  "mismatch",
		TauIn: delay.DefaultTauIn(p),
		Stages: []delay.Stage{
			{Cell: gate.MustLookup(gate.Inv), CIn: p.CMax / 2, COff: 0},
			{Cell: gate.MustLookup(gate.Inv), CIn: p.CRef, COff: 1000},
		},
	}
	meas, err := s.SimulatePath(pa, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, tau := range meas.StageTau {
		if tau <= 0 || math.IsNaN(tau) {
			t.Fatalf("stage %d transition %g", i, tau)
		}
	}
}

func TestSimVoltagesBounded(t *testing.T) {
	// Miller kickback may bump nodes past the rails momentarily, but
	// the solver must keep them in a physical band.
	s := sim()
	p := s.Proc
	types := []gate.Type{gate.Nor3, gate.Nand3, gate.Inv, gate.Nor2}
	pa := &delay.Path{Name: "bounds", TauIn: 30}
	for _, ty := range types {
		pa.Stages = append(pa.Stages, delay.Stage{Cell: gate.MustLookup(ty), CIn: 10, COff: 5})
	}
	pa.Stages[len(types)-1].COff = 60
	meas, err := s.SimulatePath(pa, true)
	if err != nil {
		t.Fatal(err)
	}
	// Crossing times must be ordered and finite — a rail violation
	// would corrupt them.
	prev := 0.0
	for i, t50 := range meas.StageT50 {
		if math.IsNaN(t50) || t50 < prev {
			t.Fatalf("stage %d crossing %g after %g", i, t50, prev)
		}
		prev = t50
	}
	_ = p
}

func TestSimLongChain(t *testing.T) {
	// A 40-stage chain exercises accumulation of integration error;
	// the sim and model must still agree.
	if testing.Short() {
		t.Skip("long chain in -short mode")
	}
	s := sim()
	s.DT = 0.5 // coarser step for speed; crossings interpolate
	m := delay.NewModel(s.Proc)
	pa := &delay.Path{Name: "long", TauIn: delay.DefaultTauIn(s.Proc)}
	for i := 0; i < 40; i++ {
		pa.Stages = append(pa.Stages, delay.Stage{
			Cell: gate.MustLookup(gate.Inv), CIn: 4 * s.Proc.CRef, COff: 3 * s.Proc.CRef,
		})
	}
	pa.Stages[39].COff = 30
	want := m.PathDelayMean(pa)
	got, err := s.PathDelayMean(pa)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-want) / want; rel > 0.25 {
		t.Fatalf("40-stage drift: model %g vs sim %g (%.0f%%)", want, got, rel*100)
	}
}

func TestSimSlowInputRamp(t *testing.T) {
	// Input transition much slower than the gate: the paper's
	// fast-input-range caveat. The sim must still settle and produce a
	// larger delay than with a fast ramp.
	s := sim()
	fast := &delay.Path{Name: "fast", TauIn: 20, Stages: []delay.Stage{
		{Cell: gate.MustLookup(gate.Inv), CIn: 8, COff: 30},
	}}
	slow := &delay.Path{Name: "slow", TauIn: 2000, Stages: []delay.Stage{
		{Cell: gate.MustLookup(gate.Inv), CIn: 8, COff: 30},
	}}
	df, err := s.PathDelayMean(fast)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.PathDelayMean(slow)
	if err != nil {
		t.Fatal(err)
	}
	if ds <= df {
		t.Fatalf("slow ramp not slower: %g vs %g", ds, df)
	}
}

func TestSimZeroProcessValidation(t *testing.T) {
	p := tech.CMOS025()
	p.VDD = 0
	s := New(p)
	pa := &delay.Path{Name: "bad", TauIn: 50, Stages: []delay.Stage{
		{Cell: gate.MustLookup(gate.Inv), CIn: 4, COff: 10},
	}}
	// VDD = 0 means nothing ever crosses: must error, not hang (the
	// window guard bounds the run).
	s.Window = 2000
	if _, err := s.SimulatePath(pa, true); err == nil {
		t.Fatal("zero-VDD simulation succeeded")
	}
}
