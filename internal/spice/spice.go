// Package spice is the transistor-level validation substrate of the
// reproduction — the stand-in for the HSPICE simulations the paper uses
// to validate its closed-form model (Fig. 2 delays, the "Simulation"
// column of Table 2).
//
// It implements a small transient simulator for bounded gate chains:
// each stage is reduced to its switching pull-up/pull-down devices
// (alpha-power-law MOSFETs, Sakurai-Newton linear/saturation boundary,
// series stacks folded into an effective width via the cell's logical
// weight), nodes carry the same load capacitances the closed-form model
// sees, and input-to-output coupling capacitors inject the Miller
// kickback. Integration is backward-Euler per node with a safeguarded
// Newton solve — the per-node equation is monotone, so the step is
// unconditionally stable even at the nanofarad/milliamp extremes of
// heavily sized gates.
//
// The simulator deliberately shares the load bookkeeping (COff, next
// pin, parasitic) with the delay package but derives its currents from
// device physics, not from eq. (1-3): comparing the two is a genuine
// model-vs-circuit validation, which is exactly how the paper uses
// HSPICE.
package spice

import (
	"fmt"
	"math"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/tech"
)

// Simulator runs transient analyses on one process corner.
type Simulator struct {
	Proc *tech.Process
	// DT is the integration step in ps (default 0.25).
	DT float64
	// Window is the maximum simulated time in ps; zero derives it from
	// a closed-form estimate of the path delay.
	Window float64
}

// New returns a Simulator with default settings on corner p.
func New(p *tech.Process) *Simulator {
	return &Simulator{Proc: p, DT: 0.25}
}

// Measurement reports a transient run over a path.
type Measurement struct {
	// Delay is t50(last stage output) − t50(input), in ps.
	Delay float64
	// StageT50 holds the absolute 50% crossing time of every stage
	// output (ps); StageTau the 20-80% transition times rescaled to
	// full swing (÷0.6), comparable to the model's transition times.
	StageT50 []float64
	StageTau []float64
	// Settled reports whether every node reached its final rail.
	Settled bool
}

// device is an alpha-power-law MOSFET with stack-degraded width.
type device struct {
	w     float64 // effective width, µm
	vt    float64 // threshold, V
	kp    float64 // transconductance factor, µA/µm at 1 V overdrive
	alpha float64
	vdsr  float64 // Vdsat ratio
}

// current returns the drain current (µA) and its derivative with
// respect to vds (µA/V) for gate overdrive vgs and drain-source vds
// (both ≥ 0 in the device's own frame).
func (d device) current(vgs, vds float64) (i, di float64) {
	ov := vgs - d.vt
	if ov <= 0 || vds <= 0 {
		return 0, 0
	}
	isat := d.kp * d.w * math.Pow(ov, d.alpha)
	vdsat := d.vdsr * ov
	if vds >= vdsat {
		// Mild channel-length modulation keeps the Newton Jacobian
		// strictly positive.
		const lambda = 0.04 // 1/V
		return isat * (1 + lambda*(vds-vdsat)), isat * lambda
	}
	u := vds / vdsat
	return isat * u * (2 - u), isat * (2 - 2*u) / vdsat
}

// simStage is one effective inverter of the expanded chain.
type simStage struct {
	nmos, pmos device
	cm         float64 // Miller coupling capacitance, fF
	cnode      float64 // grounded capacitance on the output node, fF
	in, out    int     // node indices
}

// expand reduces the path to a chain of effective inverters. BUF cells
// become two cascaded inverters with an internally tapered second
// stage, so the chain is strictly inverting per stage.
func (s *Simulator) expand(pa *delay.Path) ([]simStage, error) {
	p := s.Proc
	var stages []simStage
	node := 0 // node 0 is the path input

	addInverter := func(cin float64, cell gate.Cell, extLoad float64) {
		wPin := p.WidthForCap(cin)
		wn := p.WN(wPin) / cell.DWHL
		wp := p.WP(wPin) / cell.DWLH
		cm := 0.25 * cin // edge-averaged Miller ratio (see delay pkg)
		st := simStage{
			nmos:  device{w: wn, vt: p.VTN * p.VDD, kp: p.KPN, alpha: p.Alpha, vdsr: p.VDSatRatio},
			pmos:  device{w: wp, vt: p.VTP * p.VDD, kp: p.KPN / p.R, alpha: p.Alpha, vdsr: p.VDSatRatio},
			cm:    cm,
			cnode: extLoad + cell.Parasitic(cin),
			in:    node,
			out:   node + 1,
		}
		stages = append(stages, st)
		node++
	}

	for i := range pa.Stages {
		st := &pa.Stages[i]
		ext := st.COff
		if i+1 < len(pa.Stages) {
			ext += pa.Stages[i+1].CIn
		}
		switch {
		case st.Cell.Type == gate.Buf:
			// Two inverters: the first sees the pin capacitance, the
			// second is tapered 2×; the internal node carries the
			// second stage's pin plus a share of the BUF parasitic.
			inv := gate.MustLookup(gate.Inv)
			second := 2 * st.CIn
			addInverter(st.CIn, inv, second+0.5*st.Cell.Parasitic(st.CIn))
			addInverter(second, inv, ext+0.5*st.Cell.Parasitic(st.CIn))
		case st.Cell.Invert:
			addInverter(st.CIn, st.Cell, ext)
		default:
			return nil, fmt.Errorf("spice: cannot expand non-inverting cell %v", st.Cell.Type)
		}
	}
	return stages, nil
}

// SimulatePath runs a transient analysis of the path for the given
// launch edge (risingInput = the path entry net rises at t = 0 with
// transition time pa.TauIn).
func (s *Simulator) SimulatePath(pa *delay.Path, risingInput bool) (*Measurement, error) {
	if err := pa.Validate(); err != nil {
		return nil, err
	}
	p := s.Proc
	stages, err := s.expand(pa)
	if err != nil {
		return nil, err
	}
	n := len(stages)
	vdd := p.VDD

	dt := s.DT
	if dt <= 0 {
		dt = 0.25
	}
	window := s.Window
	if window <= 0 {
		est := delay.NewModel(p).PathDelayWorst(pa)
		window = 5*est + 10*pa.TauIn + 500
	}

	// Node capacitances: grounded part + both Miller attachments.
	cnodes := make([]float64, n+1)
	cnodes[0] = 1 // the input is forced; value irrelevant
	for i, st := range stages {
		cnodes[st.out] += st.cnode + st.cm
		if i+1 < n {
			cnodes[st.out] += stages[i+1].cm
		}
	}

	// DC initial state by logic propagation.
	v := make([]float64, n+1)
	if risingInput {
		v[0] = 0
	} else {
		v[0] = vdd
	}
	for _, st := range stages {
		if v[st.in] > vdd/2 {
			v[st.out] = 0
		} else {
			v[st.out] = vdd
		}
	}
	final := make([]float64, n+1)
	final[0] = vdd - v[0]
	for _, st := range stages {
		final[st.out] = vdd - v[st.out]
	}

	dvdt := make([]float64, n+1)
	meas := newCrossings(n, v, final, vdd)

	tEnd := window
	rampSlope := vdd / pa.TauIn
	if !risingInput {
		rampSlope = -rampSlope
	}

	for t := 0.0; t < tEnd; t += dt {
		// Input ramp.
		tNext := t + dt
		vin := v[0]
		if tNext < pa.TauIn {
			vin = v[0] + rampSlope*dt
		} else {
			vin = final[0]
		}
		dvdt[0] = (vin - v[0]) / dt
		v[0] = vin
		meas.record(0, tNext, v[0])

		// Backward-Euler per node, chain order. The Miller source from
		// the driver uses this step's derivative (already computed);
		// the kickback from the follower uses the previous step's.
		for i, st := range stages {
			var fwdCm float64
			var fwdDv float64
			if i+1 < n {
				fwdCm = stages[i+1].cm
				fwdDv = dvdt[st.out+1]
			}
			// iSrc is in natural units fF·V/ps ≡ mA; device currents
			// are in µA, so they are scaled by 1/1000 below.
			iSrc := st.cm*dvdt[st.in] + fwdCm*fwdDv
			vg := v[st.in]
			vOld := v[st.out]
			c := cnodes[st.out]

			// Solve v' − vOld − dt/c·(Ip(v') − In(v') + iSrc) = 0.
			const mAperuA = 1e-3
			f := func(x float64) (float64, float64) {
				ip, dip := stages[i].pmos.current(vdd-vg, vdd-x)
				in, din := stages[i].nmos.current(vg, x)
				val := x - vOld - dt/c*((ip-in)*mAperuA+iSrc)
				der := 1 - dt/c*(-dip-din)*mAperuA
				return val, der
			}
			x := vOld
			lo, hi := -0.5*vdd, 1.5*vdd
			for it := 0; it < 40; it++ {
				val, der := f(x)
				if math.Abs(val) < 1e-9 {
					break
				}
				if val > 0 {
					hi = x
				} else {
					lo = x
				}
				step := val / der
				nx := x - step
				if nx <= lo || nx >= hi || der <= 0 || math.IsNaN(nx) {
					nx = (lo + hi) / 2
				}
				if math.Abs(nx-x) < 1e-10 {
					x = nx
					break
				}
				x = nx
			}
			if x < -0.2*vdd {
				x = 0
			}
			if x > 1.2*vdd {
				x = vdd
			}
			dvdt[st.out] = (x - vOld) / dt
			v[st.out] = x
			meas.record(st.out, tNext, x)
		}

		if meas.done() && settled(v, final, vdd) {
			break
		}
	}

	return meas.finish(stages, pa, vdd, v, final)
}

// settled reports whether all nodes are within 2% of their final rail.
func settled(v, final []float64, vdd float64) bool {
	for i := range v {
		if math.Abs(v[i]-final[i]) > 0.02*vdd {
			return false
		}
	}
	return true
}

// crossings tracks threshold crossings per node.
type crossings struct {
	vdd           float64
	prevT         []float64
	prevV         []float64
	t20, t50, t80 []float64
	rising        []bool
}

func newCrossings(nStages int, v, final []float64, vdd float64) *crossings {
	n := len(v)
	c := &crossings{
		vdd:    vdd,
		prevT:  make([]float64, n),
		prevV:  append([]float64(nil), v...),
		t20:    nan(n),
		t50:    nan(n),
		t80:    nan(n),
		rising: make([]bool, n),
	}
	for i := range v {
		c.rising[i] = final[i] > v[i]
	}
	return c
}

func nan(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = math.NaN()
	}
	return s
}

// record notes threshold crossings between the previous and current
// sample of node i, keeping the last crossing in the signal direction.
func (c *crossings) record(i int, t, v float64) {
	pv, pt := c.prevV[i], c.prevT[i]
	for _, th := range []struct {
		frac float64
		dst  []float64
	}{{0.2, c.t20}, {0.5, c.t50}, {0.8, c.t80}} {
		level := th.frac * c.vdd
		if !c.rising[i] {
			level = (1 - th.frac) * c.vdd
		}
		crossedUp := pv < level && v >= level && c.rising[i]
		crossedDn := pv > level && v <= level && !c.rising[i]
		if crossedUp || crossedDn {
			// Linear interpolation.
			frac := (level - pv) / (v - pv)
			th.dst[i] = pt + frac*(t-pt)
		}
	}
	c.prevV[i], c.prevT[i] = v, t
}

func (c *crossings) done() bool {
	for i := range c.t50 {
		if math.IsNaN(c.t50[i]) || math.IsNaN(c.t80[i]) {
			return false
		}
	}
	return true
}

func (c *crossings) finish(stages []simStage, pa *delay.Path, vdd float64, v, final []float64) (*Measurement, error) {
	last := stages[len(stages)-1].out
	if math.IsNaN(c.t50[last]) || math.IsNaN(c.t50[0]) {
		return nil, fmt.Errorf("spice: path %q did not switch within the window", pa.Name)
	}
	m := &Measurement{
		Delay:   c.t50[last] - c.t50[0],
		Settled: settled(v, final, vdd),
	}
	// Report per original path stage: map expanded nodes back (BUF
	// contributes its second inverter's output).
	node := 0
	for i := range pa.Stages {
		if pa.Stages[i].Cell.Type == gate.Buf {
			node += 2
		} else {
			node++
		}
		m.StageT50 = append(m.StageT50, c.t50[node])
		tau := math.Abs(c.t80[node]-c.t20[node]) / 0.6
		m.StageTau = append(m.StageTau, tau)
	}
	return m, nil
}

// PathDelayMean returns the average of the rising- and falling-launch
// transient delays — the simulated counterpart of the model's
// edge-averaged path delay.
func (s *Simulator) PathDelayMean(pa *delay.Path) (float64, error) {
	up, err := s.SimulatePath(pa, true)
	if err != nil {
		return 0, err
	}
	dn, err := s.SimulatePath(pa, false)
	if err != nil {
		return 0, err
	}
	return (up.Delay + dn.Delay) / 2, nil
}

// PathDelayWorst returns the worse of the two launch-edge transient
// delays.
func (s *Simulator) PathDelayWorst(pa *delay.Path) (float64, error) {
	up, err := s.SimulatePath(pa, true)
	if err != nil {
		return 0, err
	}
	dn, err := s.SimulatePath(pa, false)
	if err != nil {
		return 0, err
	}
	return math.Max(up.Delay, dn.Delay), nil
}

// MeanDelayFn adapts the simulator to the buffering package's DelayFn
// signature; simulation failures surface as +Inf so optimizers discard
// the configuration rather than crash.
func (s *Simulator) MeanDelayFn() func(pa *delay.Path) float64 {
	return func(pa *delay.Path) float64 {
		d, err := s.PathDelayMean(pa)
		if err != nil {
			return math.Inf(1)
		}
		return d
	}
}
