package pops_test

// The documentation gate, run by CI as part of the normal test suite
// and by the dedicated docs job: every package must carry a package
// comment, every exported identifier of the facade must be documented,
// and every relative link in the repository's markdown files must
// resolve. The gate keeps the docs/ pages and the README from rotting
// as the codebase grows.

import (
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// goPackageDirs returns every directory under root holding a Go
// package of this module (skipping testdata and hidden directories).
func goPackageDirs(t *testing.T) []string {
	t.Helper()
	var dirs []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
			return filepath.SkipDir
		}
		files, globErr := filepath.Glob(filepath.Join(path, "*.go"))
		if globErr != nil {
			return globErr
		}
		for _, f := range files {
			if !strings.HasSuffix(f, "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// TestDocsPackageComments fails on any package (root, internal/*,
// cmd/*, examples/*) whose non-test files carry no package doc
// comment.
func TestDocsPackageComments(t *testing.T) {
	for _, dir := range goPackageDirs(t) {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (in %s) has no package doc comment", name, dir)
			}
		}
	}
}

// TestDocsFacadeExported fails on any exported identifier of the pops
// facade (the repository root package) lacking a doc comment — the
// facade is the public API surface, so every name must explain itself
// in godoc.
func TestDocsFacadeExported(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["pops"]
	if !ok {
		t.Fatal("root package pops not found")
	}
	d := doc.New(pkg, "repro", 0)
	check := func(kind, name string, docText string) {
		if ast.IsExported(name) && strings.TrimSpace(docText) == "" {
			t.Errorf("facade %s %s has no doc comment", kind, name)
		}
	}
	for _, v := range d.Consts {
		if strings.TrimSpace(v.Doc) == "" {
			t.Errorf("facade const group %v has no doc comment", v.Names)
		}
	}
	for _, v := range d.Vars {
		if strings.TrimSpace(v.Doc) == "" {
			t.Errorf("facade var group %v has no doc comment", v.Names)
		}
	}
	for _, ty := range d.Types {
		check("type", ty.Name, ty.Doc)
		for _, fn := range ty.Funcs {
			check("func", fn.Name, fn.Doc)
		}
		for _, m := range ty.Methods {
			check("method", ty.Name+"."+m.Name, m.Doc)
		}
	}
	for _, fn := range d.Funcs {
		check("func", fn.Name, fn.Doc)
	}
}

// TestDocsBenchIngestionCovered pins the bring-your-own-netlist
// surface into the documentation: the HTTP reference must document the
// inline-netlist request fields and the full client-error vocabulary,
// and the README must name the facade entry points. A rename or
// removal that forgets the docs fails here, not in production.
func TestDocsBenchIngestionCovered(t *testing.T) {
	requirements := map[string][]string{
		filepath.Join("docs", "API.md"): {
			"`bench`", "`benches`", "`400`", "`413`", "`422`", "`503`",
			"fingerprint",
		},
		"README.md": {
			"OptimizeBench", "ParseBench", "BenchError",
			"-bench", "custombench",
		},
	}
	for file, wants := range requirements {
		buf, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		text := string(buf)
		for _, want := range wants {
			if !strings.Contains(text, want) {
				t.Errorf("%s no longer documents %q", file, want)
			}
		}
	}
}

// TestDocsObservabilityCovered pins the observability surface into the
// documentation: the HTTP reference must document the /metrics endpoint,
// the metric families, and the request-tracing contract; the
// architecture page must describe the instrumentation layer; and the
// README must show how to scrape the daemon.
func TestDocsObservabilityCovered(t *testing.T) {
	requirements := map[string][]string{
		filepath.Join("docs", "API.md"): {
			"/metrics", "X-Request-ID", "request_id",
			"pops_http_requests_total", "pops_jobs_total",
			"pops_memo_hits_total", "-log-level", "-log-format",
		},
		filepath.Join("docs", "ARCHITECTURE.md"): {
			"Observability", "internal/obs", "X-Request-ID",
			"Recorder",
		},
		"README.md": {
			"/metrics", "X-Request-ID", "pops metrics",
			"scrape_configs", "-log-level",
		},
	}
	for file, wants := range requirements {
		buf, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		text := string(buf)
		for _, want := range wants {
			if !strings.Contains(text, want) {
				t.Errorf("%s no longer documents %q", file, want)
			}
		}
	}
}

// TestDocsDurabilityCovered pins the durability surface into the
// documentation: the HTTP reference must document the persisted-job
// lifecycle and the store metric families, the architecture page must
// describe the store/tiering/replay design, and the README must show
// the -data-dir quickstart.
func TestDocsDurabilityCovered(t *testing.T) {
	requirements := map[string][]string{
		filepath.Join("docs", "API.md"): {
			"-data-dir", "-flush-interval", "jobs.journal",
			"re-submit", "pops_store_hits_total",
			"pops_store_misses_total", "pops_store_writes_total",
			"pops_store_errors_total",
		},
		filepath.Join("docs", "ARCHITECTURE.md"): {
			"Durability", "internal/store", "PSR1", "CRC-32",
			"Write-behind", "atomic rename", "journal",
			"TestStoreEquivalenceGolden", "crash_test",
		},
		"README.md": {
			"-data-dir", "pops_store_hits_total", "journaled",
			"byte-identically",
		},
	}
	for file, wants := range requirements {
		buf, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		text := string(buf)
		for _, want := range wants {
			if !strings.Contains(text, want) {
				t.Errorf("%s no longer documents %q", file, want)
			}
		}
	}
}

// TestDocsConcurrencyLintCovered pins the concurrency-and-determinism
// lint surface: the architecture page must describe the four PR-9
// contract analyzers, the analyzer-to-invariant table, the orderindep
// annotation, and the suppression budget; the README must carry the
// ignores workflow and the enforced staticcheck note.
func TestDocsConcurrencyLintCovered(t *testing.T) {
	requirements := map[string][]string{
		filepath.Join("docs", "ARCHITECTURE.md"): {
			"The eight analyzers",
			"parcapture", "rngstream", "maporder", "locksafe",
			"byte-identity", "//pops:orderindep",
			"pre-drawn serially", "block after the unlock",
			"-ignores", "ignores_budget.txt",
			"TestWavefrontStressForcedDegrees", "TestShardedStressForcedDegrees",
			"seeded-violation", "staticcheck",
		},
		"README.md": {
			"parcapture", "rngstream", "maporder", "locksafe",
			"//pops:orderindep", "-ignores", "ignores_budget.txt",
			"staticcheck",
		},
	}
	for file, wants := range requirements {
		buf, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		text := string(buf)
		for _, want := range wants {
			if !strings.Contains(text, want) {
				t.Errorf("%s no longer documents %q", file, want)
			}
		}
	}
}

// TestDocsStaticAnalysisCovered pins the static-analysis surface into
// the documentation: the architecture page must describe the popslint
// suite (all four analyzers, the annotation and suppression grammar,
// and the vet-tool invocation), and the README must carry the
// developer-workflow note for running it locally.
func TestDocsStaticAnalysisCovered(t *testing.T) {
	requirements := map[string][]string{
		filepath.Join("docs", "ARCHITECTURE.md"): {
			"Static analysis", "cmd/popslint", "-vettool",
			"mutatorepoch", "noalloc", "memokey", "nilrecorder",
			"//pops:noalloc", "//pops:mutates", "popslint:ignore",
			"MarkMutated", "taskKey", "boundsKey",
		},
		"README.md": {
			"popslint", "-vettool", "mutatorepoch", "noalloc",
			"memokey", "nilrecorder", "popslint:ignore",
		},
	}
	for file, wants := range requirements {
		buf, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		text := string(buf)
		for _, want := range wants {
			if !strings.Contains(text, want) {
				t.Errorf("%s no longer documents %q", file, want)
			}
		}
	}
}

// TestDocsParallelismCovered pins the intra-circuit parallelism
// surface into the documentation: the HTTP reference must document the
// `parallelism` wire field on every POST body, the architecture page
// must describe the wavefront/shard scheduling design (level cache,
// RNG-stream contract, worker-capacity interplay with the engine
// pool), and the README must carry the flags and the re-anchored
// baseline table.
func TestDocsParallelismCovered(t *testing.T) {
	requirements := map[string][]string{
		filepath.Join("docs", "API.md"): {
			"`parallelism`", "byte-identical", "`mixN`",
		},
		filepath.Join("docs", "ARCHITECTURE.md"): {
			"Intra-circuit parallelism", "internal/par",
			"par.Wavefront", "netlist.Levelize", "epoch-cached",
			"RNG-stream contract", "staParallelMinNodes",
			"powerParallelMinNets", "taskParallelism", "sync.Pool",
			"byte-identical results",
		},
		"README.md": {
			"-parallelism", "BenchmarkWavefrontSTA",
			"BenchmarkParallelPower", "BenchmarkEngineSuiteUncached",
			"mix50000", "-allow-single-core",
		},
	}
	for file, wants := range requirements {
		buf, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		text := string(buf)
		for _, want := range wants {
			if !strings.Contains(text, want) {
				t.Errorf("%s no longer documents %q", file, want)
			}
		}
	}
}

// mdLink matches inline markdown links; the first group is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinks resolves every relative link in the repository's
// markdown files (root *.md and docs/*.md): the target file must
// exist. External links (http, https, mailto) are skipped.
func TestDocsLinks(t *testing.T) {
	var files []string
	for _, pat := range []string{"*.md", "docs/*.md"} {
		hits, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, hits...)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	for _, file := range files {
		buf, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(buf), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%s does not exist)", file, m[1], resolved)
			}
		}
	}
}
