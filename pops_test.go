package pops

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	proc := DefaultProcess()
	model := NewModel(proc)
	c, err := Benchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(c, model)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstDelay <= 0 {
		t.Fatal("degenerate STA result")
	}
	pa, _, err := CriticalPath(c, model)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bounds(model, pa.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !(0 < b.Tmin && b.Tmin < b.Tmax) {
		t.Fatalf("bounds %+v", b)
	}
	r, err := Distribute(model, pa, 1.3*b.Tmin)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delay > 1.3*b.Tmin*(1+1e-4) {
		t.Fatalf("constraint missed: %g", r.Delay)
	}
}

func TestBenchmarkNames(t *testing.T) {
	for _, name := range []string{"c17", "rca8", "c432", "Adder16", "fpd"} {
		c, err := Benchmark(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, bad := range []string{"c404", "rca0", "rcaX", ""} {
		if _, err := Benchmark(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
	if len(Benchmarks()) != 11 {
		t.Fatalf("suite size %d", len(Benchmarks()))
	}
}

func TestLoadBenchRoundTrip(t *testing.T) {
	c, err := Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBench(&sb, c); err != nil {
		t.Fatal(err)
	}
	d, err := LoadBench(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	ce, err := Equivalent(c, d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("round trip changed logic: %v", ce)
	}
}

func TestLoadBenchElaborates(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
`
	c, err := LoadBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// XOR must have been lowered to primitives so STA runs directly.
	if _, err := Analyze(c, NewModel(DefaultProcess())); err != nil {
		t.Fatalf("loaded circuit not analyzable: %v", err)
	}
}

func TestErrInfeasibleExposed(t *testing.T) {
	model := NewModel(DefaultProcess())
	c, err := Benchmark("fpd")
	if err != nil {
		t.Fatal(err)
	}
	pa, _, err := CriticalPath(c, model)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bounds(model, pa.Clone())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Distribute(model, pa, 0.5*b.Tmin)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestKWorstPathsFacade(t *testing.T) {
	model := NewModel(DefaultProcess())
	c, err := Benchmark("fpd")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := KWorstPaths(c, model, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	prev := math.Inf(1)
	for _, pa := range paths {
		d := model.PathDelayWorst(pa)
		if d > prev*(1+0.05) {
			t.Fatalf("paths badly ordered: %g after %g", d, prev)
		}
		prev = d
	}
}

func TestCharacterizeLibraryFacade(t *testing.T) {
	entries := CharacterizeLibrary(NewModel(DefaultProcess()))
	if len(entries) < 5 {
		t.Fatalf("characterization: %d entries", len(entries))
	}
}

func TestProtocolFacadeEndToEnd(t *testing.T) {
	model := NewModel(DefaultProcess())
	proto, err := NewProtocol(ProtocolConfig{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Benchmark("rca8")
	if err != nil {
		t.Fatal(err)
	}
	orig := c.Clone()
	pa, _, err := CriticalPath(c, model)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bounds(model, pa.Clone())
	if err != nil {
		t.Fatal(err)
	}
	out, err := proto.OptimizeCircuit(c, 1.4*b.Tmin)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Fatalf("protocol failed on rca8: %+v", out)
	}
	ce, err := Equivalent(orig, c, 300, 99)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("adder broken: %v", ce)
	}
}

func TestSimulatorFacade(t *testing.T) {
	proc := DefaultProcess()
	model := NewModel(proc)
	sim := NewSimulator(proc)
	c, err := Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	pa, _, err := CriticalPath(c, model)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sim.PathDelayMean(pa)
	if err != nil {
		t.Fatal(err)
	}
	want := model.PathDelayMean(pa)
	if rel := math.Abs(d-want) / want; rel > 0.3 {
		t.Fatalf("model %g vs sim %g (%.0f%% apart)", want, d, rel*100)
	}
}

func TestApplyWireLoadsFacade(t *testing.T) {
	c, err := Benchmark("fpd")
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(DefaultProcess())
	before, err := Analyze(c, model)
	if err != nil {
		t.Fatal(err)
	}
	total, err := ApplyWireLoads(c)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatal("no wire load applied")
	}
	after, err := Analyze(c, model)
	if err != nil {
		t.Fatal(err)
	}
	if after.WorstDelay <= before.WorstDelay {
		t.Fatal("wire loads had no timing effect")
	}
}
