package pops_test

// Bring-your-own-netlist acceptance: an inline .bench circuit — the
// genuine embedded c17 and a genuine ripple-carry adder — optimizes
// end-to-end through the facade (pops.OptimizeBench) and the HTTP
// service (POST /v1/optimize {"bench": …}), with results
// byte-identical between the entry points. The CLI leg of the same
// contract lives in cmd/pops (TestOptimizeBenchFileMatchesFacade).

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/internal/engine"
	"repro/internal/iscas"
)

// rcaSource serializes a genuine 4-bit ripple-carry adder to .bench.
func rcaSource(t *testing.T) string {
	t.Helper()
	c, err := iscas.RippleCarryAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := pops.WriteBench(&sb, c); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestBenchIngestionEntryPointsByteIdentical(t *testing.T) {
	sources := []struct {
		name  string
		src   string
		ratio float64
	}{
		{"c17", iscas.C17Bench(), 1.3},
		{"rca4", rcaSource(t), 1.4},
	}
	for _, tc := range sources {
		name, src, ratio := tc.name, tc.src, tc.ratio
		t.Run(name, func(t *testing.T) {
			// Facade entry point, on its own engine.
			eng, err := pops.NewEngine(pops.EngineConfig{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			res, err := pops.OptimizeBench(context.Background(), eng, src,
				pops.OptimizeRequest{Ratio: ratio})
			if err != nil {
				t.Fatal(err)
			}
			if res.Circuit != name || !res.Outcome.Feasible {
				t.Fatalf("facade result %q feasible=%v", res.Circuit, res.Outcome.Feasible)
			}
			facadeWire, err := json.Marshal(engine.WireOptimize(res))
			if err != nil {
				t.Fatal(err)
			}

			// HTTP entry point, on a second, independent engine.
			eng2, err := pops.NewEngine(pops.EngineConfig{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			srv := pops.NewEngineServer(context.Background(), eng2)
			ts := httptest.NewServer(srv)
			defer ts.Close()
			defer srv.Store().Close()
			body, err := json.Marshal(map[string]any{"bench": src, "ratio": ratio, "wait": true})
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, raw)
			}
			var job struct {
				Status string          `json:"status"`
				Result json.RawMessage `json:"result"`
			}
			if err := json.Unmarshal(raw, &job); err != nil {
				t.Fatal(err)
			}
			if job.Status != "done" {
				t.Fatalf("job status %s: %s", job.Status, raw)
			}

			// Byte-identity: re-compact both wire forms and compare.
			var httpWire bytes.Buffer
			if err := json.Compact(&httpWire, job.Result); err != nil {
				t.Fatal(err)
			}
			if httpWire.String() != string(facadeWire) {
				t.Fatalf("HTTP and facade results differ\n--- http\n%s\n--- facade\n%s",
					httpWire.String(), facadeWire)
			}
		})
	}
}
